module T = Tensor

(* Pick a parallel-for grain so each shard carries at least [target_work]
   elementary operations when one item of the sharded loop costs
   [item_cost]; loops cheaper than one grain run inline. *)
let grain_for ~item_cost ~target_work = max 1 (target_work / max 1 item_cost)

(* Elementwise ops take [?out] so kernels granted an in-place buffer by
   the executor's memory planner can reuse an input's backing store
   (see Tensor.map_f / map2_f for the aliasing discipline). *)
let add ?out a b = T.map2_f ?out ( +. ) a b

let sub ?out a b = T.map2_f ?out ( -. ) a b

let mul ?out a b = T.map2_f ?out ( *. ) a b

let div ?out a b = T.map2_f ?out ( /. ) a b

let maximum ?out a b = T.map2_f ?out Float.max a b

let minimum ?out a b = T.map2_f ?out Float.min a b

let pow ?out a b = T.map2_f ?out ( ** ) a b

(* Floor-mod (TF FloorMod): the result takes the divisor's sign and
   fractional operands are handled exactly — no truncation through int,
   which was wrong for fractions and overflowed for large floats. *)
let floor_mod a b =
  let r = Float.rem a b in
  if r <> 0.0 && r < 0.0 <> (b < 0.0) then r +. b else r

let modulo ?out a b = T.map2_f ?out floor_mod a b

let neg ?out t = T.map_f ?out (fun x -> -.x) t

let abs ?out t = T.map_f ?out Float.abs t

let sign ?out t =
  T.map_f ?out (fun x -> if x > 0.0 then 1.0 else if x < 0.0 then -1.0 else 0.0) t

let exp ?out t = T.map_f ?out Stdlib.exp t

let log ?out t = T.map_f ?out Stdlib.log t

let sqrt ?out t = T.map_f ?out Stdlib.sqrt t

let square ?out t = T.map_f ?out (fun x -> x *. x) t

let reciprocal ?out t = T.map_f ?out (fun x -> 1.0 /. x) t

let relu ?out t = T.map_f ?out (fun x -> Float.max 0.0 x) t

let relu_grad ?out dy x =
  T.map2_f ?out (fun g v -> if v > 0.0 then g else 0.0) dy x

let sigmoid ?out t = T.map_f ?out (fun x -> 1.0 /. (1.0 +. Stdlib.exp (-.x))) t

let tanh ?out t = T.map_f ?out Stdlib.tanh t

let equal = T.map2_cmp (fun a b -> a = b)

let less = T.map2_cmp ( < )

let greater = T.map2_cmp ( > )

let greater_equal = T.map2_cmp ( >= )

(* One broadcast-indexed pass allocating only the output — the previous
   implementation materialized three full-size temporaries (and cast the
   bool condition through the value dtype). A non-zero condition element
   selects from [a]. *)
let select cond a b =
  let out_shape =
    Shape.broadcast (Shape.broadcast (T.shape cond) (T.shape a)) (T.shape b)
  in
  let ic = T.broadcast_index cond out_shape
  and ia = T.broadcast_index a out_shape
  and ib = T.broadcast_index b out_shape in
  let n = Shape.numel out_shape in
  let out = T.zeros (T.dtype a) out_shape in
  Parallel.parallel_for ~grain:4096 n (fun lo hi ->
      for i = lo to hi - 1 do
        T.flat_set_f out i
          (if T.flat_get_f cond (ic i) <> 0.0 then T.flat_get_f a (ia i)
           else T.flat_get_f b (ib i))
      done);
  out

(* Materialize the transpose of a [cols x rows] row-major buffer as a
   [rows x cols] one, so the transposed matmul variants reuse the fast
   non-transposed kernel. One O(rows*cols) pack beats the strided inner
   loops that made transposed matmuls ~10x slower than the plain path. *)
let transpose_pack src rows cols =
  let out = Buffer_pool.alloc_float ~zero:false (rows * cols) in
  Parallel.parallel_for
    ~grain:(grain_for ~item_cost:cols ~target_work:16384)
    rows
    (fun lo hi ->
      for i = lo to hi - 1 do
        let base = i * cols in
        for j = 0 to cols - 1 do
          out.(base + j) <- src.((j * rows) + i)
        done
      done);
  out

(* Shared dense GEMM core: out[m x n] = A[m x k] * B[k x n], row-major.
   k is blocked so the active B panel stays cache-resident while the i-k-j
   loop streams A; rows are sharded across the intra-op budget.
   Accumulation over p is ascending for every output element regardless of
   block or shard layout, so results are bit-identical at any thread
   count. *)
let matmul_block = 256

let matmul_buf ~m ~k ~n da db =
  let out = Buffer_pool.alloc_float (m * n) in
  let grain = grain_for ~item_cost:(k * n) ~target_work:32768 in
  Parallel.parallel_for ~grain m (fun lo hi ->
      let p0 = ref 0 in
      while !p0 < k do
        let pend = min k (!p0 + matmul_block) in
        for i = lo to hi - 1 do
          let abase = i * k and obase = i * n in
          for p = !p0 to pend - 1 do
            let aip = da.(abase + p) in
            if aip <> 0.0 then
              let bbase = p * n in
              for j = 0 to n - 1 do
                out.(obase + j) <- out.(obase + j) +. (aip *. db.(bbase + j))
              done
          done
        done;
        p0 := pend
      done);
  out

let matmul ?(transpose_a = false) ?(transpose_b = false) a b =
  if T.rank a <> 2 || T.rank b <> 2 then
    invalid_arg "Tensor_ops.matmul: operands must be 2-D";
  let sa = T.shape a and sb = T.shape b in
  let m, k = if transpose_a then (sa.(1), sa.(0)) else (sa.(0), sa.(1)) in
  let k2, n = if transpose_b then (sb.(1), sb.(0)) else (sb.(0), sb.(1)) in
  if k <> k2 then
    invalid_arg
      (Printf.sprintf "Tensor_ops.matmul: inner dims %d vs %d" k k2);
  let da0 = T.float_buffer a and db0 = T.float_buffer b in
  let da = if transpose_a then transpose_pack da0 m k else da0 in
  let db = if transpose_b then transpose_pack db0 k n else db0 in
  let out = matmul_buf ~m ~k ~n da db in
  (* The transpose packs are private scratch — recycle them. *)
  if transpose_a then Buffer_pool.release_float da;
  if transpose_b then Buffer_pool.release_float db;
  T.of_float_array ~dtype:(T.dtype a) [| m; n |] out

let transpose ?perm t =
  let r = T.rank t in
  let perm =
    match perm with
    | Some p -> p
    | None -> Array.init r (fun i -> r - 1 - i)
  in
  if Array.length perm <> r then
    invalid_arg "Tensor_ops.transpose: perm rank mismatch";
  let in_shape = T.shape t in
  let out_shape = Array.map (fun i -> in_shape.(i)) perm in
  let n = T.numel t in
  let out = T.zeros (T.dtype t) out_shape in
  let in_strides = Shape.strides in_shape in
  let out_strides = Shape.strides out_shape in
  (* Source stride of each output dimension: the inner loop is then pure
     integer arithmetic with no per-element index array. *)
  let src_strides = Array.map (fun d -> in_strides.(d)) perm in
  Parallel.parallel_for ~grain:8192 n (fun lo hi ->
      for o = lo to hi - 1 do
        let iflat = ref 0 in
        for d = 0 to r - 1 do
          iflat :=
            !iflat + (o / out_strides.(d) mod out_shape.(d) * src_strides.(d))
        done;
        T.flat_set_f out o (T.flat_get_f t !iflat)
      done);
  out

(* Reductions shard over output slots: each slot's reduced sub-space is
   walked in row-major order by an odometer over the reduced dimensions,
   which visits exactly the ascending-flat-index subsequence the serial
   elementwise scan used — so values (and therefore rounding) are
   unchanged, and slots are independent so any shard layout gives
   bit-identical results. *)
let reduce_generic init combine finish ?(axes = []) ?(keep_dims = false) t =
  let in_shape = T.shape t in
  let out_shape = Shape.reduce ~keep_dims in_shape axes in
  let r = Shape.rank in_shape in
  let axes_n =
    if axes = [] then List.init r (fun i -> i)
    else List.map (Shape.normalize_axis in_shape) axes
  in
  let reduced = Array.make r false in
  List.iter (fun a -> reduced.(a) <- true) axes_n;
  let in_strides = Shape.strides in_shape in
  let kept_dims = ref [] and kept_in_strides = ref [] in
  let red_dims = ref [] and red_strides = ref [] in
  for d = r - 1 downto 0 do
    if reduced.(d) then begin
      red_dims := in_shape.(d) :: !red_dims;
      red_strides := in_strides.(d) :: !red_strides
    end
    else begin
      kept_dims := in_shape.(d) :: !kept_dims;
      kept_in_strides := in_strides.(d) :: !kept_in_strides
    end
  done;
  let kept_dims = Array.of_list !kept_dims in
  let kept_in_strides = Array.of_list !kept_in_strides in
  let red_dims = Array.of_list !red_dims in
  let red_strides = Array.of_list !red_strides in
  let kept_out_strides = Shape.strides kept_dims in
  let nkept = Array.length kept_dims and nred = Array.length red_dims in
  let red_count = Array.fold_left ( * ) 1 red_dims in
  let nout = Shape.numel out_shape in
  let out = Array.make nout 0.0 in
  Parallel.parallel_for
    ~grain:(grain_for ~item_cost:red_count ~target_work:8192)
    nout
    (fun lo hi ->
      let idx = Array.make (max 1 nred) 0 in
      for o = lo to hi - 1 do
        let base = ref 0 in
        for d = 0 to nkept - 1 do
          base :=
            !base
            + (o / kept_out_strides.(d) mod kept_dims.(d) * kept_in_strides.(d))
        done;
        Array.fill idx 0 nred 0;
        let acc = ref init and off = ref !base in
        for _ = 1 to red_count do
          acc := combine !acc (T.flat_get_f t !off);
          let d = ref (nred - 1) and carry = ref true in
          while !carry && !d >= 0 do
            idx.(!d) <- idx.(!d) + 1;
            off := !off + red_strides.(!d);
            if idx.(!d) = red_dims.(!d) then begin
              off := !off - (red_dims.(!d) * red_strides.(!d));
              idx.(!d) <- 0;
              decr d
            end
            else carry := false
          done
        done;
        out.(o) <- finish !acc red_count
      done);
  T.of_float_array ~dtype:(T.dtype t) out_shape out

let reduce_sum ?axes ?keep_dims t =
  reduce_generic 0.0 ( +. ) (fun v _ -> v) ?axes ?keep_dims t

let reduce_mean ?axes ?keep_dims t =
  reduce_generic 0.0 ( +. )
    (fun v c -> if c = 0 then 0.0 else v /. float_of_int c)
    ?axes ?keep_dims t

let reduce_max ?axes ?keep_dims t =
  reduce_generic Float.neg_infinity Float.max (fun v _ -> v) ?axes ?keep_dims t

let argmax t ~axis =
  let in_shape = T.shape t in
  let axis = Shape.normalize_axis in_shape axis in
  let out_shape = Shape.reduce in_shape [ axis ] in
  let out = T.zeros Dtype.I32 out_shape in
  let best = Array.make (Shape.numel out_shape) Float.neg_infinity in
  let r = Shape.rank in_shape in
  let kept_shape = out_shape in
  let kept_strides = Shape.strides kept_shape in
  for i = 0 to T.numel t - 1 do
    let idx = Shape.multi_index in_shape i in
    let o = ref 0 and ki = ref 0 in
    for d = 0 to r - 1 do
      if d <> axis then begin
        o := !o + (idx.(d) * kept_strides.(!ki));
        incr ki
      end
    done;
    let v = T.flat_get_f t i in
    if v > best.(!o) then begin
      best.(!o) <- v;
      T.flat_set_i out !o idx.(axis)
    end
  done;
  out

let concat ts ~axis =
  match ts with
  | [] -> invalid_arg "Tensor_ops.concat: empty list"
  | first :: _ ->
      let shapes = List.map T.shape ts in
      let out_shape = Shape.concat shapes ~axis in
      let axis = Shape.normalize_axis (T.shape first) axis in
      let out = T.zeros (T.dtype first) out_shape in
      let offset = ref 0 in
      List.iter
        (fun t ->
          let s = T.shape t in
          for i = 0 to T.numel t - 1 do
            let idx = Shape.multi_index s i in
            idx.(axis) <- idx.(axis) + !offset;
            T.flat_set_f out (Shape.flat_index out_shape idx) (T.flat_get_f t i)
          done;
          offset := !offset + s.(axis))
        ts;
      out

let slice t ~begin_ ~size =
  let in_shape = T.shape t in
  let r = Shape.rank in_shape in
  if Array.length begin_ <> r || Array.length size <> r then
    invalid_arg "Tensor_ops.slice: rank mismatch";
  let out_shape =
    Array.init r (fun i ->
        let sz = if size.(i) = -1 then in_shape.(i) - begin_.(i) else size.(i) in
        if begin_.(i) < 0 || begin_.(i) + sz > in_shape.(i) then
          invalid_arg "Tensor_ops.slice: out of bounds";
        sz)
  in
  let out = T.zeros (T.dtype t) out_shape in
  for o = 0 to Shape.numel out_shape - 1 do
    let oidx = Shape.multi_index out_shape o in
    let iidx = Array.mapi (fun d v -> v + begin_.(d)) oidx in
    T.flat_set_f out o (T.get_f t iidx)
  done;
  out

let split t ~axis ~num =
  let in_shape = T.shape t in
  let axis = Shape.normalize_axis in_shape axis in
  if in_shape.(axis) mod num <> 0 then
    invalid_arg "Tensor_ops.split: axis not divisible";
  let piece = in_shape.(axis) / num in
  List.init num (fun i ->
      let begin_ = Array.make (Shape.rank in_shape) 0 in
      begin_.(axis) <- i * piece;
      let size = Array.copy in_shape in
      size.(axis) <- piece;
      slice t ~begin_ ~size)

let pad t ~paddings =
  let in_shape = T.shape t in
  let r = Shape.rank in_shape in
  if Array.length paddings <> r then
    invalid_arg "Tensor_ops.pad: rank mismatch";
  let out_shape =
    Array.init r (fun i ->
        let before, after = paddings.(i) in
        in_shape.(i) + before + after)
  in
  let out = T.zeros (T.dtype t) out_shape in
  for i = 0 to T.numel t - 1 do
    let idx = Shape.multi_index in_shape i in
    let oidx = Array.mapi (fun d v -> v + fst paddings.(d)) idx in
    T.flat_set_f out (Shape.flat_index out_shape oidx) (T.flat_get_f t i)
  done;
  out

let tile t ~multiples =
  let in_shape = T.shape t in
  let r = Shape.rank in_shape in
  if Array.length multiples <> r then
    invalid_arg "Tensor_ops.tile: rank mismatch";
  let out_shape = Array.init r (fun i -> in_shape.(i) * multiples.(i)) in
  let out = T.zeros (T.dtype t) out_shape in
  for o = 0 to Shape.numel out_shape - 1 do
    let oidx = Shape.multi_index out_shape o in
    let iidx = Array.mapi (fun d v -> v mod in_shape.(d)) oidx in
    T.flat_set_f out o (T.get_f t iidx)
  done;
  out

let broadcast_to t target =
  let bshape = Shape.broadcast (T.shape t) target in
  if not (Shape.equal bshape target) then
    invalid_arg "Tensor_ops.broadcast_to: not broadcastable to target";
  if Shape.equal (T.shape t) target then T.copy t
  else begin
    let ix = T.broadcast_index t target in
    let n = Shape.numel target in
    let out = T.zeros (T.dtype t) target in
    Parallel.parallel_for ~grain:8192 n (fun lo hi ->
        for i = lo to hi - 1 do
          T.flat_set_f out i (T.flat_get_f t (ix i))
        done);
    out
  end

let one_hot indices ~depth =
  let in_shape = T.shape indices in
  let out_shape = Array.append in_shape [| depth |] in
  let out = T.zeros Dtype.F32 out_shape in
  for i = 0 to T.numel indices - 1 do
    let v = T.flat_get_i indices i in
    if v >= 0 && v < depth then T.flat_set_f out ((i * depth) + v) 1.0
  done;
  out

let row_size params =
  let s = T.shape params in
  if Shape.rank s < 1 then invalid_arg "Tensor_ops: params must have rank >= 1";
  Shape.numel s / s.(0)

let gather params indices =
  let s = T.shape params in
  let rs = row_size params in
  let n = T.numel indices in
  let out_shape =
    Array.append (T.shape indices) (Array.sub s 1 (Shape.rank s - 1))
  in
  let out = T.zeros (T.dtype params) out_shape in
  for i = 0 to n - 1 do
    let row = T.flat_get_i indices i in
    if row < 0 || row >= s.(0) then
      invalid_arg
        (Printf.sprintf "Tensor_ops.gather: index %d out of range [0,%d)" row
           s.(0));
    for j = 0 to rs - 1 do
      T.flat_set_f out ((i * rs) + j) (T.flat_get_f params ((row * rs) + j))
    done
  done;
  out

let scatter_add acc indices updates =
  let out = T.copy acc in
  let rs = row_size acc in
  let n = T.numel indices in
  if T.numel updates <> n * rs then
    invalid_arg "Tensor_ops.scatter_add: updates size mismatch";
  for i = 0 to n - 1 do
    let row = T.flat_get_i indices i in
    if row < 0 || row >= (T.shape acc).(0) then
      invalid_arg "Tensor_ops.scatter_add: index out of range";
    for j = 0 to rs - 1 do
      let o = (row * rs) + j in
      T.flat_set_f out o (T.flat_get_f out o +. T.flat_get_f updates ((i * rs) + j))
    done
  done;
  out

let dynamic_partition data partitions ~num =
  let s = T.shape data in
  let nrows = if Shape.rank s = 0 then 1 else s.(0) in
  if T.numel partitions <> nrows then
    invalid_arg "Tensor_ops.dynamic_partition: partitions length mismatch";
  let rs = row_size data in
  let buckets = Array.make num [] in
  for i = nrows - 1 downto 0 do
    let p = T.flat_get_i partitions i in
    if p < 0 || p >= num then
      invalid_arg "Tensor_ops.dynamic_partition: partition id out of range";
    buckets.(p) <- i :: buckets.(p)
  done;
  List.init num (fun p ->
      let rows = buckets.(p) in
      let count = List.length rows in
      let out_shape =
        if Shape.rank s = 0 then [| count |]
        else Array.append [| count |] (Array.sub s 1 (Shape.rank s - 1))
      in
      let out = T.zeros (T.dtype data) out_shape in
      List.iteri
        (fun oi row ->
          for j = 0 to rs - 1 do
            T.flat_set_f out ((oi * rs) + j)
              (T.flat_get_f data ((row * rs) + j))
          done)
        rows;
      out)

let dynamic_stitch indices data =
  if List.length indices <> List.length data then
    invalid_arg "Tensor_ops.dynamic_stitch: list length mismatch";
  if indices = [] then invalid_arg "Tensor_ops.dynamic_stitch: empty";
  let max_index =
    List.fold_left
      (fun acc idx -> T.fold_f (fun m v -> max m (int_of_float v)) acc idx)
      (-1) indices
  in
  let nrows = max_index + 1 in
  let sample = List.hd data in
  (* Row size and tail shape come from any non-empty partition. *)
  let pairs = List.combine indices data in
  let nonempty = List.find_opt (fun (idx, _) -> T.numel idx > 0) pairs in
  let rs =
    match nonempty with
    | Some (idx, d) -> T.numel d / T.numel idx
    | None -> 1
  in
  let tail_shape =
    match nonempty with
    | Some (_, d) ->
        let s = T.shape d in
        if Shape.rank s <= 1 then [||] else Array.sub s 1 (Shape.rank s - 1)
    | None -> [||]
  in
  let out_shape = Array.append [| nrows |] tail_shape in
  let out = T.zeros (T.dtype sample) out_shape in
  List.iter2
    (fun idx d ->
      for i = 0 to T.numel idx - 1 do
        let row = T.flat_get_i idx i in
        for j = 0 to rs - 1 do
          T.flat_set_f out ((row * rs) + j) (T.flat_get_f d ((i * rs) + j))
        done
      done)
    indices data;
  out

type padding = Same | Valid

(* Output size and pad-before for one spatial dimension. *)
let conv_dim ~padding ~in_size ~filter ~stride =
  match padding with
  | Valid ->
      let out = ((in_size - filter) / stride) + 1 in
      (out, 0)
  | Same ->
      let out = (in_size + stride - 1) / stride in
      let pad_total = max 0 (((out - 1) * stride) + filter - in_size) in
      (out, pad_total / 2)

(* im2col: unroll convolution input patches into a
   [batch*oh*ow x fh*fw*ic] row-major matrix whose columns line up with
   HWIO filter rows, turning conv2d and both of its gradients into
   blocked matmuls over the shared GEMM core. Out-of-bounds (padding)
   patch entries stay zero. *)
let im2col din ~ih ~iw ~ic ~fh ~fw ~oh ~ow ~sh ~sw ~ph ~pw ~rows =
  let kdim = fh * fw * ic in
  let cols = Buffer_pool.alloc_float (rows * kdim) in
  Parallel.parallel_for
    ~grain:(grain_for ~item_cost:kdim ~target_work:16384)
    rows
    (fun lo hi ->
      for rix = lo to hi - 1 do
        let x = rix mod ow in
        let by = rix / ow in
        let y = by mod oh in
        let b = by / oh in
        let rbase = rix * kdim in
        for ky = 0 to fh - 1 do
          let sy = (y * sh) + ky - ph in
          if sy >= 0 && sy < ih then
            for kx = 0 to fw - 1 do
              let sx = (x * sw) + kx - pw in
              if sx >= 0 && sx < iw then begin
                let ibase = (((b * ih) + sy) * iw + sx) * ic in
                let cbase = rbase + (((ky * fw) + kx) * ic) in
                for c = 0 to ic - 1 do
                  cols.(cbase + c) <- din.(ibase + c)
                done
              end
            done
        done
      done);
  cols

let conv2d input filter ~strides ~padding =
  let is = T.shape input and fs = T.shape filter in
  if Shape.rank is <> 4 || Shape.rank fs <> 4 then
    invalid_arg "Tensor_ops.conv2d: input NHWC and filter HWIO required";
  let batch = is.(0) and ih = is.(1) and iw = is.(2) and ic = is.(3) in
  let fh = fs.(0) and fw = fs.(1) and fic = fs.(2) and oc = fs.(3) in
  if ic <> fic then invalid_arg "Tensor_ops.conv2d: channel mismatch";
  let sh, sw = strides in
  let oh, ph = conv_dim ~padding ~in_size:ih ~filter:fh ~stride:sh in
  let ow, pw = conv_dim ~padding ~in_size:iw ~filter:fw ~stride:sw in
  let din = T.float_buffer input and dft = T.float_buffer filter in
  let rows = batch * oh * ow and kdim = fh * fw * ic in
  let cols = im2col din ~ih ~iw ~ic ~fh ~fw ~oh ~ow ~sh ~sw ~ph ~pw ~rows in
  let out = matmul_buf ~m:rows ~k:kdim ~n:oc cols dft in
  Buffer_pool.release_float cols;
  T.of_float_array ~dtype:(T.dtype input) [| batch; oh; ow; oc |] out

let conv2d_grad_input ~input_shape filter dy ~strides ~padding =
  let is = input_shape and fs = T.shape filter and os = T.shape dy in
  let batch = is.(0) and ih = is.(1) and iw = is.(2) and ic = is.(3) in
  let fh = fs.(0) and fw = fs.(1) and oc = fs.(3) in
  let oh = os.(1) and ow = os.(2) in
  let sh, sw = strides in
  let _, ph = conv_dim ~padding ~in_size:ih ~filter:fh ~stride:sh in
  let _, pw = conv_dim ~padding ~in_size:iw ~filter:fw ~stride:sw in
  let dft = T.float_buffer filter and ddy = T.float_buffer dy in
  let rows = batch * oh * ow and kdim = fh * fw * ic in
  (* d(cols) = dy[rows x oc] * filter^T[oc x kdim], then scatter the patch
     gradients back (col2im). Windows overlap within a batch image, so
     the scatter shards over the batch dimension only — contributions to
     one input element stay on one shard, in a fixed order. *)
  let ft_t = transpose_pack dft oc kdim in
  let dcols = matmul_buf ~m:rows ~k:oc ~n:kdim ddy ft_t in
  Buffer_pool.release_float ft_t;
  let out = Buffer_pool.alloc_float (batch * ih * iw * ic) in
  Parallel.parallel_for ~grain:1 batch (fun blo bhi ->
      for b = blo to bhi - 1 do
        for y = 0 to oh - 1 do
          for x = 0 to ow - 1 do
            let rbase = ((((b * oh) + y) * ow) + x) * kdim in
            for ky = 0 to fh - 1 do
              let sy = (y * sh) + ky - ph in
              if sy >= 0 && sy < ih then
                for kx = 0 to fw - 1 do
                  let sx = (x * sw) + kx - pw in
                  if sx >= 0 && sx < iw then begin
                    let ibase = (((b * ih) + sy) * iw + sx) * ic in
                    let cbase = rbase + (((ky * fw) + kx) * ic) in
                    for c = 0 to ic - 1 do
                      out.(ibase + c) <- out.(ibase + c) +. dcols.(cbase + c)
                    done
                  end
                done
            done
          done
        done
      done);
  Buffer_pool.release_float dcols;
  T.of_float_array ~dtype:(T.dtype dy) is out

let conv2d_grad_filter ~filter_shape input dy ~strides ~padding =
  let is = T.shape input and fs = filter_shape and os = T.shape dy in
  let batch = is.(0) and ih = is.(1) and iw = is.(2) and ic = is.(3) in
  let fh = fs.(0) and fw = fs.(1) and oc = fs.(3) in
  let oh = os.(1) and ow = os.(2) in
  let sh, sw = strides in
  let _, ph = conv_dim ~padding ~in_size:ih ~filter:fh ~stride:sh in
  let _, pw = conv_dim ~padding ~in_size:iw ~filter:fw ~stride:sw in
  let din = T.float_buffer input and ddy = T.float_buffer dy in
  let rows = batch * oh * ow and kdim = fh * fw * ic in
  (* d(filter) = cols^T[kdim x rows] * dy[rows x oc]: patch positions are
     the contraction axis, accumulated in ascending (b, y, x) order for
     every filter element. *)
  let cols = im2col din ~ih ~iw ~ic ~fh ~fw ~oh ~ow ~sh ~sw ~ph ~pw ~rows in
  let cols_t = transpose_pack cols kdim rows in
  Buffer_pool.release_float cols;
  let out = matmul_buf ~m:kdim ~k:rows ~n:oc cols_t ddy in
  Buffer_pool.release_float cols_t;
  T.of_float_array ~dtype:(T.dtype dy) fs out

let pool_generic input ~ksize ~strides ~padding ~init ~combine ~finish =
  let is = T.shape input in
  if Shape.rank is <> 4 then invalid_arg "Tensor_ops.pool: NHWC required";
  let batch = is.(0) and ih = is.(1) and iw = is.(2) and c = is.(3) in
  let kh, kw = ksize and sh, sw = strides in
  let oh, ph = conv_dim ~padding ~in_size:ih ~filter:kh ~stride:sh in
  let ow, pw = conv_dim ~padding ~in_size:iw ~filter:kw ~stride:sw in
  let din = T.float_buffer input in
  let out = Array.make (batch * oh * ow * c) 0.0 in
  (* Output rows (one per (batch, y)) are independent — shard across
     them; each window is still scanned in the fixed ky, kx order. *)
  Parallel.parallel_for
    ~grain:(grain_for ~item_cost:(ow * c * kh * kw) ~target_work:8192)
    (batch * oh)
    (fun lo hi ->
      for row = lo to hi - 1 do
        let b = row / oh and y = row mod oh in
        for x = 0 to ow - 1 do
          for ch = 0 to c - 1 do
            let acc = ref init and count = ref 0 in
            for ky = 0 to kh - 1 do
              let sy = (y * sh) + ky - ph in
              if sy >= 0 && sy < ih then
                for kx = 0 to kw - 1 do
                  let sx = (x * sw) + kx - pw in
                  if sx >= 0 && sx < iw then begin
                    acc :=
                      combine !acc din.((((b * ih) + sy) * iw + sx) * c + ch);
                    incr count
                  end
                done
            done;
            out.((((b * oh) + y) * ow + x) * c + ch) <- finish !acc !count
          done
        done
      done);
  T.of_float_array ~dtype:(T.dtype input) [| batch; oh; ow; c |] out

let max_pool input ~ksize ~strides ~padding =
  pool_generic input ~ksize ~strides ~padding ~init:Float.neg_infinity
    ~combine:Float.max ~finish:(fun v _ -> v)

let avg_pool input ~ksize ~strides ~padding =
  pool_generic input ~ksize ~strides ~padding ~init:0.0 ~combine:( +. )
    ~finish:(fun v n -> if n = 0 then 0.0 else v /. float_of_int n)

let max_pool_grad input dy ~ksize ~strides ~padding =
  let is = T.shape input and os = T.shape dy in
  let batch = is.(0) and ih = is.(1) and iw = is.(2) and c = is.(3) in
  let kh, kw = ksize and sh, sw = strides in
  let oh = os.(1) and ow = os.(2) in
  let _, ph = conv_dim ~padding ~in_size:ih ~filter:kh ~stride:sh in
  let _, pw = conv_dim ~padding ~in_size:iw ~filter:kw ~stride:sw in
  let din = T.float_buffer input and ddy = T.float_buffer dy in
  let out = Array.make (T.numel input) 0.0 in
  (* Windows overlap within an image, so gradient scatter shards over the
     batch dimension only. *)
  Parallel.parallel_for ~grain:1 batch (fun blo bhi ->
  for b = blo to bhi - 1 do
    for y = 0 to oh - 1 do
      for x = 0 to ow - 1 do
        for ch = 0 to c - 1 do
          (* Find the argmax of the window, then route the gradient there. *)
          let best = ref Float.neg_infinity and best_off = ref (-1) in
          for ky = 0 to kh - 1 do
            let sy = (y * sh) + ky - ph in
            if sy >= 0 && sy < ih then
              for kx = 0 to kw - 1 do
                let sx = (x * sw) + kx - pw in
                if sx >= 0 && sx < iw then begin
                  let off = (((b * ih) + sy) * iw + sx) * c + ch in
                  if din.(off) > !best then begin
                    best := din.(off);
                    best_off := off
                  end
                end
              done
          done;
          if !best_off >= 0 then
            out.(!best_off) <-
              out.(!best_off) +. ddy.((((b * oh) + y) * ow + x) * c + ch)
        done
      done
    done
  done);
  T.of_float_array ~dtype:(T.dtype input) is out

let rows_2d t =
  let s = T.shape t in
  if Shape.rank s <> 2 then invalid_arg "Tensor_ops: 2-D tensor required";
  (s.(0), s.(1))

(* The softmax family shards over rows: each row's max / sum / normalize
   passes stay on one shard, in the serial order. *)
let softmax_grain d = grain_for ~item_cost:d ~target_work:4096

let softmax t =
  let n, d = rows_2d t in
  let src = T.float_buffer t in
  let out = Array.make (n * d) 0.0 in
  Parallel.parallel_for ~grain:(softmax_grain d) n (fun lo hi ->
      for i = lo to hi - 1 do
        let base = i * d in
        let m = ref Float.neg_infinity in
        for j = 0 to d - 1 do
          m := Float.max !m src.(base + j)
        done;
        let sum = ref 0.0 in
        for j = 0 to d - 1 do
          let e = Stdlib.exp (src.(base + j) -. !m) in
          out.(base + j) <- e;
          sum := !sum +. e
        done;
        for j = 0 to d - 1 do
          out.(base + j) <- out.(base + j) /. !sum
        done
      done);
  T.of_float_array ~dtype:(T.dtype t) (T.shape t) out

let log_softmax t =
  let n, d = rows_2d t in
  let src = T.float_buffer t in
  let out = Array.make (n * d) 0.0 in
  Parallel.parallel_for ~grain:(softmax_grain d) n (fun lo hi ->
      for i = lo to hi - 1 do
        let base = i * d in
        let m = ref Float.neg_infinity in
        for j = 0 to d - 1 do
          m := Float.max !m src.(base + j)
        done;
        let sum = ref 0.0 in
        for j = 0 to d - 1 do
          sum := !sum +. Stdlib.exp (src.(base + j) -. !m)
        done;
        let lse = !m +. Stdlib.log !sum in
        for j = 0 to d - 1 do
          out.(base + j) <- src.(base + j) -. lse
        done
      done);
  T.of_float_array ~dtype:(T.dtype t) (T.shape t) out

let softmax_cross_entropy ~logits ~labels =
  let n, d = rows_2d logits in
  let ls = log_softmax logits in
  let lsb = T.float_buffer ls and lab = T.float_buffer labels in
  let out = Array.make n 0.0 in
  Parallel.parallel_for ~grain:(softmax_grain d) n (fun lo hi ->
      for i = lo to hi - 1 do
        let acc = ref 0.0 in
        for j = 0 to d - 1 do
          acc := !acc +. (lab.((i * d) + j) *. lsb.((i * d) + j))
        done;
        out.(i) <- -. !acc
      done);
  T.of_float_array ~dtype:(T.dtype logits) [| n |] out

let softmax_cross_entropy_grad ~logits ~labels = sub (softmax logits) labels
