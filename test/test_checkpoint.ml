open Octf_tensor
open Octf

let tmp () = Filename.temp_file "octf_test" ".ckpt"

let test_roundtrip_all_dtypes () =
  let path = tmp () in
  let entries =
    [
      ("f", Tensor.of_float_array [| 2; 2 |] [| 1.5; -2.5; 0.0; 3.25 |]);
      ("i", Tensor.of_int_array [| 3 |] [| -7; 0; 42 |]);
      ("b", Tensor.of_bool_array [| 2 |] [| true; false |]);
      ("s", Tensor.of_string_array [| 2 |] [| "hello"; "" |]);
      ("scalar", Tensor.scalar_f 9.0);
    ]
  in
  Checkpoint_format.write path entries;
  let back = Checkpoint_format.read_all path in
  Alcotest.(check int) "count" 5 (List.length back);
  List.iter
    (fun (name, original) ->
      let restored = List.assoc name back in
      Alcotest.(check bool)
        (name ^ " dtype") true
        (Tensor.dtype restored = Tensor.dtype original);
      Alcotest.(check bool)
        (name ^ " shape") true
        (Tensor.shape restored = Tensor.shape original);
      if Tensor.dtype original <> Dtype.String then
        Alcotest.(check bool)
          (name ^ " data") true
          (Tensor.approx_equal restored original)
      else
        Alcotest.(check bool)
          (name ^ " strings") true
          (Tensor.string_buffer restored = Tensor.string_buffer original))
    entries;
  Sys.remove path

let test_read_single_and_names () =
  let path = tmp () in
  Checkpoint_format.write path
    [ ("a", Tensor.scalar_f 1.0); ("b", Tensor.scalar_f 2.0) ];
  Alcotest.(check (list string)) "names" [ "a"; "b" ]
    (Checkpoint_format.names path);
  Alcotest.(check (float 0.)) "read b" 2.0
    (Tensor.flat_get_f (Checkpoint_format.read path "b") 0);
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Checkpoint_format.read path "zzz"));
  Sys.remove path

let test_bad_magic () =
  let path = tmp () in
  let oc = open_out_bin path in
  output_string oc "NOTACKPT!";
  close_out oc;
  (match Checkpoint_format.read_all path with
  | _ -> Alcotest.fail "expected Corrupt on bad magic"
  | exception Checkpoint_format.Corrupt _ -> ());
  Sys.remove path

(* A structurally-valid checkpoint used as the corruption target. *)
let write_sample path =
  Checkpoint_format.write path
    [
      ("w", Tensor.of_float_array [| 2; 2 |] [| 1.0; 2.0; 3.0; 4.0 |]);
      ("names", Tensor.of_string_array [| 2 |] [| "ab"; "cdef" |]);
    ]

let slurp path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let spit path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Every malformed file must surface as Corrupt — a torn write must
   never escape as End_of_file, Invalid_argument or a hang. *)
let check_corrupt what path =
  match Checkpoint_format.read_all path with
  | _ -> Alcotest.failf "%s: expected Corrupt" what
  | exception Checkpoint_format.Corrupt _ -> ()
  | exception e ->
      Alcotest.failf "%s: expected Corrupt, got %s" what
        (Printexc.to_string e)

let test_truncation_all_offsets () =
  let path = tmp () in
  write_sample path;
  let full = slurp path in
  (* Cut the file at every prefix length: each one is a torn write. *)
  for len = 0 to String.length full - 1 do
    spit path (String.sub full 0 len);
    check_corrupt (Printf.sprintf "truncated at %d" len) path
  done;
  Sys.remove path

let test_bit_flips () =
  let path = tmp () in
  write_sample path;
  let full = slurp path in
  (* Flip one bit per byte position; the reader must either detect the
     damage (Corrupt) or still parse (flips inside float payloads
     change values, not structure) — never crash another way. *)
  for i = 0 to String.length full - 1 do
    let b = Bytes.of_string full in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x80));
    spit path (Bytes.to_string b);
    match Checkpoint_format.read_all path with
    | _ -> ()
    | exception Checkpoint_format.Corrupt _ -> ()
    | exception e ->
        Alcotest.failf "bit flip at %d: expected Corrupt, got %s" i
          (Printexc.to_string e)
  done;
  Sys.remove path

let test_hostile_lengths () =
  let path = tmp () in
  (* Claimed entry count/length fields far beyond the file size must be
     rejected before allocation, not trusted. *)
  let buf = Buffer.create 64 in
  Buffer.add_string buf "OCTFCKPT1";
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 0x7FFFFFFFFFFFL;
  Buffer.add_bytes buf b;
  spit path (Buffer.contents buf);
  check_corrupt "hostile entry count" path;
  Sys.remove path

let test_overwrite_atomic () =
  let path = tmp () in
  Checkpoint_format.write path [ ("x", Tensor.scalar_f 1.0) ];
  Checkpoint_format.write path [ ("x", Tensor.scalar_f 2.0) ];
  Alcotest.(check (float 0.)) "latest wins" 2.0
    (Tensor.flat_get_f (Checkpoint_format.read path "x") 0);
  Alcotest.(check bool) "no temp file left" false
    (Sys.file_exists (path ^ ".tmp"));
  Sys.remove path

let prop_float_roundtrip =
  QCheck.Test.make ~name:"checkpoint float roundtrip" ~count:30
    QCheck.(small_list (float_range (-1e6) 1e6))
    (fun l ->
      l = []
      ||
      let a = Array.of_list l in
      let t = Tensor.of_float_array [| Array.length a |] a in
      let path = tmp () in
      Checkpoint_format.write path [ ("t", t) ];
      let back = Checkpoint_format.read path "t" in
      Sys.remove path;
      Tensor.approx_equal ~tol:0.0 back t)

let suite =
  [
    Alcotest.test_case "roundtrip all dtypes" `Quick test_roundtrip_all_dtypes;
    Alcotest.test_case "read single / names" `Quick test_read_single_and_names;
    Alcotest.test_case "bad magic" `Quick test_bad_magic;
    Alcotest.test_case "truncation at every offset" `Quick
      test_truncation_all_offsets;
    Alcotest.test_case "single bit flips" `Quick test_bit_flips;
    Alcotest.test_case "hostile length fields" `Quick test_hostile_lengths;
    Alcotest.test_case "atomic overwrite" `Quick test_overwrite_atomic;
    QCheck_alcotest.to_alcotest prop_float_roundtrip;
  ]
