(* Accuracy regression for end-to-end quantized inference (§5): a
   briefly-trained MNIST-style CNN and a scaled-down convnet-zoo model
   are frozen, calibrated on representative batches, quantized, and
   must stay within a fixed top-1 delta of their float frozen twins.
   Seeded synthetic data keeps every run deterministic. A serving-path
   leg checks that Serving.infer over the quantized frozen session
   returns exactly what a direct Session.run on it does. *)

open Octf_tensor
open Octf
module B = Builder
module Vs = Octf_nn.Var_store
module L = Octf_nn.Layers
module Serving = Octf_serving.Serving
module Syn = Octf_data.Synthetic

type model = {
  session : Session.t;  (** trained live session *)
  pixels : B.output;
  logits : B.output;
  calibrate : B.output list;  (** interior activations worth observing *)
  image_size : int;
  classes : int;
}

(* The serve-CLI MNIST-style CNN: two conv/pool blocks and two dense
   layers over small synthetic images. *)
let mnist_cnn ~train_steps =
  let classes = 4 and image_size = 12 and batch = 16 in
  let b = B.create () in
  let store = Vs.create b in
  let pixels = B.placeholder b ~name:"pixels" Dtype.F32 in
  let labels = B.placeholder b ~name:"labels" Dtype.I32 in
  let conv1 =
    L.conv2d store ~activation:`Relu ~name:"conv1" ~in_channels:1
      ~out_channels:8 ~ksize:(3, 3) pixels
  in
  let pool1 = L.max_pool2d b ~ksize:(2, 2) conv1 in
  let conv2 =
    L.conv2d store ~activation:`Relu ~name:"conv2" ~in_channels:8
      ~out_channels:16 ~ksize:(3, 3) pool1
  in
  let pool2 = L.max_pool2d b ~ksize:(2, 2) conv2 in
  let side = image_size / 4 in
  let flat = L.flatten b ~features:(side * side * 16) pool2 in
  let hidden =
    L.dense store ~activation:`Relu ~name:"fc1"
      ~in_dim:(side * side * 16)
      ~out_dim:32 flat
  in
  let logits = L.dense store ~name:"logits" ~in_dim:32 ~out_dim:classes hidden in
  let loss =
    Octf_nn.Losses.sparse_softmax_cross_entropy_mean b ~num_classes:classes
      ~logits ~labels
  in
  let train_op =
    Octf_train.Optimizer.minimize store
      ~algorithm:Octf_train.Optimizer.adam_default ~lr:0.003 ~loss ()
  in
  let session = Session.create (B.graph b) in
  Session.run_unit session [ Vs.init_op store ];
  let rng = Rng.create 5 in
  for _ = 1 to train_steps do
    let imgs = Syn.image_batch rng ~batch ~size:image_size ~channels:1 ~classes in
    Session.run_unit
      ~feeds:[ (pixels, imgs.Syn.pixels); (labels, imgs.Syn.labels) ]
      session [ train_op ]
  done;
  {
    session;
    pixels;
    logits;
    calibrate = [ conv1; conv2; hidden ];
    image_size;
    classes;
  }

(* A miniaturized convnet-zoo model: AlexNet's layer sequence
   (Convnet_zoo.alexnet) with channel and feature counts scaled down so
   it trains in a test, instantiated as a real executable graph. *)
let alexnet_mini ~train_steps =
  let classes = 4 and image_size = 16 and batch = 16 in
  let spec = Octf_models.Convnet_zoo.alexnet in
  let b = B.create () in
  let store = Vs.create b in
  let pixels = B.placeholder b ~name:"pixels" Dtype.F32 in
  let labels = B.placeholder b ~name:"labels" Dtype.I32 in
  (* walk the published layer list, scaling channels by 1/32 (floor 4)
     and replacing the 224x224 geometry with a 16x16 one; pools shrink
     the image and the final Fc layers become small dense layers *)
  let scale c = max 4 (c / 32) in
  let x = ref pixels and in_c = ref 1 and side = ref image_size in
  let conv_i = ref 0 and pool_budget = ref 2 in
  let calibrate = ref [] in
  List.iter
    (fun layer ->
      match layer with
      | Octf_models.Convnet_zoo.Conv { out_c; _ } ->
          incr conv_i;
          let out_channels = scale out_c in
          let o =
            L.conv2d store ~activation:`Relu
              ~name:(Printf.sprintf "conv%d" !conv_i)
              ~in_channels:!in_c ~out_channels ~ksize:(3, 3) !x
          in
          calibrate := o :: !calibrate;
          x := o;
          in_c := out_channels
      | Octf_models.Convnet_zoo.Pool _ when !pool_budget > 0 ->
          decr pool_budget;
          x := L.max_pool2d b ~ksize:(2, 2) !x;
          side := !side / 2
      | Octf_models.Convnet_zoo.Pool _ | Octf_models.Convnet_zoo.Fc _ -> ())
    spec.Octf_models.Convnet_zoo.layers;
  let flat = L.flatten b ~features:(!side * !side * !in_c) !x in
  (* AlexNet's three Fc layers, scaled: 4096 -> 32, 1000 -> classes *)
  let fc1 =
    L.dense store ~activation:`Relu ~name:"fc1"
      ~in_dim:(!side * !side * !in_c)
      ~out_dim:32 flat
  in
  let fc2 = L.dense store ~activation:`Relu ~name:"fc2" ~in_dim:32 ~out_dim:32 fc1 in
  let logits = L.dense store ~name:"logits" ~in_dim:32 ~out_dim:classes fc2 in
  calibrate := fc1 :: fc2 :: !calibrate;
  let loss =
    Octf_nn.Losses.sparse_softmax_cross_entropy_mean b ~num_classes:classes
      ~logits ~labels
  in
  let train_op =
    Octf_train.Optimizer.minimize store
      ~algorithm:Octf_train.Optimizer.adam_default ~lr:0.003 ~loss ()
  in
  let session = Session.create (B.graph b) in
  Session.run_unit session [ Vs.init_op store ];
  let rng = Rng.create 6 in
  for _ = 1 to train_steps do
    let imgs = Syn.image_batch rng ~batch ~size:image_size ~channels:1 ~classes in
    Session.run_unit
      ~feeds:[ (pixels, imgs.Syn.pixels); (labels, imgs.Syn.labels) ]
      session [ train_op ]
  done;
  {
    session;
    pixels;
    logits;
    calibrate = List.rev !calibrate;
    image_size;
    classes;
  }

(* count [op] in the live subgraph behind [fetch] *)
let count_ops session (fetch : B.output) op =
  let graph = Session.graph session in
  let seen = Hashtbl.create 16 in
  let n = ref 0 in
  let rec walk id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      let node = Graph.get graph id in
      if node.Node.op_type = op then incr n;
      Array.iter
        (fun (e : Node.endpoint) -> walk e.Node.node_id)
        node.Node.inputs;
      List.iter walk node.Node.control_inputs
    end
  in
  walk fetch.B.node.Node.id;
  !n

let argmax_row t ~row ~cols =
  let best = ref 0 in
  for j = 1 to cols - 1 do
    if Tensor.flat_get_f t ((row * cols) + j)
       > Tensor.flat_get_f t ((row * cols) + !best)
    then best := j
  done;
  !best

(* Freeze a float twin and a calibrated quantized twin, run both over a
   held-out batch, and compare top-1 agreement. *)
let check_top1_delta ~name ~max_delta ~eval_batch m =
  let float_frozen =
    Serving.freeze_session ~quantize:false ~inputs:[ m.pixels ]
      ~outputs:[ m.logits ] m.session
  in
  (* calibrate on the float frozen graph with representative batches *)
  let cal = Quant_calibration.create () in
  let rng = Rng.create 17 in
  for _ = 1 to 8 do
    let imgs =
      Syn.image_batch rng ~batch:16 ~size:m.image_size ~channels:1
        ~classes:m.classes
    in
    Quant_calibration.observe_step cal float_frozen
      ~feeds:[ (m.pixels, imgs.Syn.pixels) ]
      m.calibrate
  done;
  let quant_frozen =
    Serving.freeze_session ~quantize:true
      ~ranges:(Quant_calibration.ranges cal)
      ~inputs:[ m.pixels ] ~outputs:[ m.logits ] m.session
  in
  (* the mechanism, not just the outcome: calibrated codes-out islands
     exist in the served subgraph, and the fetched logits stay float *)
  let q_islands =
    count_ops quant_frozen m.logits "QuantizedConv2DQ"
    + count_ops quant_frozen m.logits "QuantizedMatMulQ"
  in
  if q_islands < 2 then
    Alcotest.failf "%s: only %d calibrated islands rewritten" name q_islands;
  (* the fetched logits node itself was never rewritten *)
  let logits_node =
    Graph.get (Session.graph quant_frozen) m.logits.B.node.Node.id
  in
  Alcotest.(check bool)
    (name ^ ": fetched logits stay float")
    false
    (String.length logits_node.Node.op_type >= 9
    && String.sub logits_node.Node.op_type 0 9 = "Quantized");
  let eval =
    Syn.image_batch (Rng.create 23) ~batch:eval_batch ~size:m.image_size
      ~channels:1 ~classes:m.classes
  in
  let run s =
    List.hd (Session.run ~feeds:[ (m.pixels, eval.Syn.pixels) ] s [ m.logits ])
  in
  let fl = run float_frozen and qu = run quant_frozen in
  let agree = ref 0 in
  for row = 0 to eval_batch - 1 do
    if
      argmax_row fl ~row ~cols:m.classes = argmax_row qu ~row ~cols:m.classes
    then incr agree
  done;
  let delta =
    1.0 -. (float_of_int !agree /. float_of_int eval_batch)
  in
  if delta > max_delta then
    Alcotest.failf "%s: quantized top-1 delta %.3f exceeds budget %.3f" name
      delta max_delta;
  (float_frozen, quant_frozen, eval)

let test_mnist_cnn_accuracy () =
  let m = mnist_cnn ~train_steps:30 in
  ignore (check_top1_delta ~name:"mnist-cnn" ~max_delta:0.1 ~eval_batch:64 m)

let test_alexnet_mini_accuracy () =
  let m = alexnet_mini ~train_steps:30 in
  ignore (check_top1_delta ~name:"alexnet-mini" ~max_delta:0.1 ~eval_batch:64 m)

(* Serving a quantized frozen graph: infer must return exactly what a
   direct Session.run over the same frozen session does — the batcher
   stacks and slices around the very same deterministic kernels. *)
let test_serving_quantized_path () =
  let m = mnist_cnn ~train_steps:10 in
  let cal = Quant_calibration.create () in
  let rng = Rng.create 29 in
  for _ = 1 to 4 do
    let imgs =
      Syn.image_batch rng ~batch:16 ~size:m.image_size ~channels:1
        ~classes:m.classes
    in
    Quant_calibration.observe_step cal m.session
      ~feeds:[ (m.pixels, imgs.Syn.pixels) ]
      m.calibrate
  done;
  let quant_frozen =
    Serving.freeze_session ~quantize:true
      ~ranges:(Quant_calibration.ranges cal)
      ~inputs:[ m.pixels ] ~outputs:[ m.logits ] m.session
  in
  let server =
    Serving.create ~name:"quant-test" ~max_batch_size:4 ~max_queue_delay:0.001
      ~session:quant_frozen ~inputs:[ m.pixels ] ~outputs:[ m.logits ] ()
  in
  Fun.protect ~finally:(fun () -> Serving.shutdown server) @@ fun () ->
  let imgs =
    Syn.image_batch (Rng.create 31) ~batch:1 ~size:m.image_size ~channels:1
      ~classes:m.classes
  in
  let image =
    Tensor.reshape imgs.Syn.pixels [| m.image_size; m.image_size; 1 |]
  in
  let direct =
    List.hd
      (Session.run
         ~feeds:[ (m.pixels, imgs.Syn.pixels) ]
         quant_frozen [ m.logits ])
  in
  match Serving.infer server [ image ] with
  | Ok [ served ] ->
      (* served is [classes], direct is [1; classes]: same numbers *)
      Alcotest.(check int) "logit count" (Tensor.numel direct)
        (Tensor.numel served);
      for j = 0 to Tensor.numel direct - 1 do
        Alcotest.(check (float 0.0)) "bit-identical logit"
          (Tensor.flat_get_f direct j)
          (Tensor.flat_get_f served j)
      done
  | Ok _ -> Alcotest.fail "arity"
  | Error f -> Alcotest.failf "infer failed: %s" (Step_failure.cause_message f.Step_failure.cause)

let suite =
  [
    Alcotest.test_case "mnist-cnn quantized top-1 delta" `Quick
      test_mnist_cnn_accuracy;
    Alcotest.test_case "alexnet-mini quantized top-1 delta" `Quick
      test_alexnet_mini_accuracy;
    Alcotest.test_case "serving path over quantized graph" `Quick
      test_serving_quantized_path;
  ]
