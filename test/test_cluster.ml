open Octf_tensor
open Octf
module B = Builder

let scalar t = Tensor.flat_get_f t 0

let cluster () =
  Cluster.create
    ~jobs:[ ("ps", 2, [ Device.CPU ]); ("worker", 2, [ Device.CPU ]) ]

let test_devices_and_names () =
  let c = cluster () in
  Alcotest.(check int) "four devices" 4 (List.length (Cluster.devices c));
  Alcotest.(check (list string)) "task names"
    [ "/job:ps/task:0"; "/job:ps/task:1"; "/job:worker/task:0";
      "/job:worker/task:1" ]
    (Cluster.task_names c)

let test_per_task_resources () =
  let c = cluster () in
  let d0 = Device.make ~job:"ps" ~task:0 Device.CPU in
  let d1 = Device.make ~job:"ps" ~task:1 Device.CPU in
  Alcotest.(check bool) "distinct managers" true
    (Cluster.resources_of c d0 != Cluster.resources_of c d1);
  Alcotest.(check bool) "stable" true
    (Cluster.resources_of c d0 == Cluster.resources_of c d0);
  match Cluster.resources_of c (Device.make ~job:"nowhere" Device.CPU) with
  | _ -> Alcotest.fail "expected a missing-task error"
  | exception Step_failure.Error f -> (
      match f.Step_failure.cause with
      | Step_failure.Missing_task msg ->
          let contains needle =
            let nh = String.length msg and nn = String.length needle in
            let rec go i =
              i + nn <= nh && (String.sub msg i nn = needle || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) "names the missing task" true
            (contains "/job:nowhere/task:0");
          Alcotest.(check bool) "lists known tasks" true
            (contains "/job:ps/task:0")
      | c ->
          Alcotest.failf "expected Missing_task, got %s"
            (Step_failure.cause_message c))

let test_variable_lives_on_its_task () =
  let c = cluster () in
  let b = B.create () in
  let v =
    B.variable b ~name:"w" ~device:"/job:ps/task:1" ~dtype:Dtype.F32
      ~shape:[||] ()
  in
  let init = B.assign b v (B.const_f b 7.0) in
  let s = Cluster.session c (B.graph b) in
  Session.run_unit s [ init ];
  (* The resource must exist in ps/1's manager and nowhere else. *)
  let res1 = Cluster.task_resources c ~job:"ps" ~task:1 in
  let res0 = Cluster.task_resources c ~job:"ps" ~task:0 in
  Alcotest.(check bool) "on ps/1" true (Resource_manager.find res1 "w" <> None);
  Alcotest.(check bool) "not on ps/0" true
    (Resource_manager.find res0 "w" = None)

let test_cross_task_training_step () =
  (* Gradient descent where the parameter, the data source and the loss
     live on three different tasks. *)
  let c = cluster () in
  let b = B.create () in
  let w =
    B.variable b ~name:"w" ~device:"/job:ps/task:0" ~dtype:Dtype.F32
      ~shape:[||] ()
  in
  let init = B.assign b w (B.const_f b 0.0) in
  let r = B.read b w in
  let grad =
    B.with_device b "/job:worker/task:0" (fun () ->
        B.mul b (B.sub b r (B.const_f b 4.0)) (B.const_f b 2.0))
  in
  let update =
    B.assign_sub b w (B.mul b grad (B.const_f b 0.25))
  in
  let s = Cluster.session c (B.graph b) in
  Session.run_unit s [ init ];
  for _ = 1 to 20 do
    Session.run_unit s [ update ]
  done;
  Alcotest.(check (float 1e-3)) "converged across tasks" 4.0
    (scalar (List.hd (Session.run s [ r ])))

let test_multi_variable_multi_ps () =
  let c = cluster () in
  let b = B.create () in
  let w0 =
    B.variable b ~name:"w0" ~device:"/job:ps/task:0" ~dtype:Dtype.F32
      ~shape:[||] ()
  in
  let w1 =
    B.variable b ~name:"w1" ~device:"/job:ps/task:1" ~dtype:Dtype.F32
      ~shape:[||] ()
  in
  let init =
    B.group b
      [ B.assign b w0 (B.const_f b 2.0); B.assign b w1 (B.const_f b 3.0) ]
  in
  let total = B.add b (B.read b w0) (B.read b w1) in
  let s = Cluster.session c (B.graph b) in
  Session.run_unit s [ init ];
  Alcotest.(check (float 0.)) "sharded sum" 5.0
    (scalar (List.hd (Session.run s [ total ])))

let suite =
  [
    Alcotest.test_case "devices and names" `Quick test_devices_and_names;
    Alcotest.test_case "per task resources" `Quick test_per_task_resources;
    Alcotest.test_case "variable on its task" `Quick
      test_variable_lives_on_its_task;
    Alcotest.test_case "cross-task training" `Quick
      test_cross_task_training_step;
    Alcotest.test_case "multi-variable multi-ps" `Quick
      test_multi_variable_multi_ps;
  ]
