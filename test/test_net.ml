(* The out-of-process runtime: frame codec, wire codec, backoff,
   rendezvous hygiene, SPMD placement determinism, and a real two-runtime
   TCP exchange (in one test process, over loopback sockets). *)

open Octf_tensor
open Octf
module B = Builder
module Frame = Octf_net.Frame
module Message = Octf_net.Message
module Wire = Octf_net.Wire
module Runtime = Octf_net.Runtime
module Transport = Octf_net.Transport

(* Like [Session.run_unit] where success is expected, but a failure
   reports its structured cause instead of an opaque [Run_error _]. *)
let must ?feeds session targets =
  try Session.run_unit ?feeds session targets
  with Session.Run_error f ->
    Alcotest.failf "step failed: %s" (Step_failure.to_string f)

(* ----------------------------- frames ------------------------------ *)

let frame_types =
  [
    Frame.Hello; Frame.Ping; Frame.Pong; Frame.Tensor; Frame.Run_step;
    Frame.Step_done; Frame.Cancel_step; Frame.Error_frame; Frame.Goodbye;
  ]

let prop_frame_roundtrip =
  QCheck.Test.make ~name:"frame codec roundtrip" ~count:200
    QCheck.(
      triple (int_bound (List.length frame_types - 1)) (int_bound 0xFFFFF)
        (string_of_size Gen.small_nat))
    (fun (ti, stream_id, payload) ->
      let f = Frame.v ~stream_id (List.nth frame_types ti) payload in
      match Frame.decode (Frame.encode f) with
      | Ok g ->
          g.Frame.ftype = f.Frame.ftype
          && g.Frame.stream_id = f.Frame.stream_id
          && g.Frame.payload = f.Frame.payload
      | Error _ -> false)

(* Golden malformed inputs: each maps onto its typed error, never an
   escaped exception or a hang. *)
let test_malformed_frames () =
  let good = Frame.encode (Frame.v ~stream_id:7 Frame.Tensor "payload") in
  let set b i c =
    let by = Bytes.of_string b in
    Bytes.set by i c;
    Bytes.to_string by
  in
  (* Unknown type code. *)
  (match Frame.decode (set good 4 '\xFF') with
  | Error (Frame.Unknown_frame { frame_type = 0xFF; _ }) -> ()
  | r ->
      Alcotest.failf "unknown type: got %s"
        (match r with Ok _ -> "Ok" | Error e -> Frame.error_kind e));
  (* Length beyond max_payload (0x7FFFFFFF little-endian). *)
  let oversize =
    set (set (set (set good 0 '\xFF') 1 '\xFF') 2 '\xFF') 3 '\x7F'
  in
  (match Frame.decode oversize with
  | Error (Frame.Invalid_length _) -> ()
  | r ->
      Alcotest.failf "oversize: got %s"
        (match r with Ok _ -> "Ok" | Error e -> Frame.error_kind e));
  (* One flipped payload bit. *)
  let flipped =
    set good Frame.header_size
      (Char.chr (Char.code good.[Frame.header_size] lxor 0x10))
  in
  (match Frame.decode flipped with
  | Error (Frame.Checksum_mismatch _) -> ()
  | r ->
      Alcotest.failf "bit flip: got %s"
        (match r with Ok _ -> "Ok" | Error e -> Frame.error_kind e));
  (* Truncation: mid-header and mid-payload. *)
  List.iter
    (fun len ->
      match Frame.decode (String.sub good 0 len) with
      | Error (Frame.Protocol_error _) -> ()
      | r ->
          Alcotest.failf "truncated at %d: got %s" len
            (match r with Ok _ -> "Ok" | Error e -> Frame.error_kind e))
    [ 0; 5; Frame.header_size - 1; Frame.header_size + 2 ]

let test_encode_rejects_oversize_payload () =
  (* Send-side validation: an oversized payload must fail fast in the
     sender with a typed error, not be rejected by the receiver as a
     generic connection teardown (or wrap the u32 length field). *)
  let payload = String.make (Frame.max_payload + 1) 'x' in
  match Frame.encode (Frame.v Frame.Tensor payload) with
  | _ -> Alcotest.fail "oversize payload must not encode"
  | exception Frame.Frame_error (Frame.Invalid_length _) -> ()

let test_frame_checksum_positional () =
  (* The checksum must catch transposed bytes, not just changed ones. *)
  let f = Frame.v Frame.Tensor "ab" in
  let enc = Frame.encode f in
  let b = Bytes.of_string enc in
  Bytes.set b Frame.header_size 'b';
  Bytes.set b (Frame.header_size + 1) 'a';
  match Frame.decode (Bytes.to_string b) with
  | Error (Frame.Checksum_mismatch _) -> ()
  | _ -> Alcotest.fail "transposition not caught"

(* ------------------------------ wire -------------------------------- *)

let tensors_of_every_dtype () =
  [
    Tensor.of_float_array [| 2; 2 |] [| 1.5; -2.0; 0.0; 3.25 |];
    Tensor.of_float_array ~dtype:Dtype.F64 [| 3 |] [| 1e-9; 2.0; -5.5 |];
    Tensor.of_int_array ~dtype:Dtype.I32 [| 2 |] [| -7; 42 |];
    Tensor.of_int_array ~dtype:Dtype.I64 [| 1 |] [| max_int / 2 |];
    Tensor.of_bool_array [| 4 |] [| true; false; false; true |];
    Tensor.of_string_array [| 2 |] [| "hello"; "" |];
    Tensor.scalar_f 9.0;
  ]

let test_wire_tensor_roundtrip () =
  List.iter
    (fun t ->
      let b = Buffer.create 64 in
      Wire.put_tensor b t;
      let back = Wire.get_tensor (Wire.reader (Buffer.contents b)) in
      Alcotest.(check string)
        "dtype"
        (Dtype.to_string (Tensor.dtype t))
        (Dtype.to_string (Tensor.dtype back));
      Alcotest.(check (array int)) "shape" (Tensor.shape t) (Tensor.shape back);
      match Tensor.dtype t with
      | Dtype.String ->
          Alcotest.(check (array string))
            "strings"
            (Tensor.string_buffer t)
            (Tensor.string_buffer back)
      | _ ->
          Alcotest.(check bool) "payload" true
            (Tensor.approx_equal ~tol:0.0 t back))
    (tensors_of_every_dtype ())

let test_wire_truncation_is_decode_error () =
  let b = Buffer.create 64 in
  Wire.put_tensor b (Tensor.of_float_array [| 4 |] [| 1.; 2.; 3.; 4. |]);
  let full = Buffer.contents b in
  for len = 0 to String.length full - 1 do
    match Wire.get_tensor (Wire.reader (String.sub full 0 len)) with
    | _ -> Alcotest.failf "truncated at %d: expected Decode_error" len
    | exception Wire.Decode_error _ -> ()
    | exception e ->
        Alcotest.failf "truncated at %d: got %s" len (Printexc.to_string e)
  done

let roundtrip_message m =
  match Message.of_frame (Result.get_ok (Frame.decode (Frame.encode (Message.to_frame m)))) with
  | m' -> m'

let test_message_roundtrips () =
  (match roundtrip_message (Message.Hello { version = 1; job = "ps"; task = 3 }) with
  | Message.Hello { version = 1; job = "ps"; task = 3 } -> ()
  | _ -> Alcotest.fail "hello");
  (match roundtrip_message (Message.Ping { seq = 12 }) with
  | Message.Ping { seq = 12 } -> ()
  | _ -> Alcotest.fail "ping");
  (match
     roundtrip_message
       (Message.Tensor
          { key = "step:9;a;b;x:0"; value = Value.Tensor (Tensor.scalar_f 4.0) })
   with
  | Message.Tensor { key = "step:9;a;b;x:0"; value = Value.Tensor t } ->
      Alcotest.(check (float 0.)) "tensor payload" 4.0 (Tensor.flat_get_f t 0)
  | _ -> Alcotest.fail "tensor");
  (match
     roundtrip_message
       (Message.Run_step
          {
            step_id = 5;
            timeout = Some 1.5;
            feeds = [ ({ Node.node_id = 1; index = 0 }, Tensor.scalar_i 3) ];
            fetches = [ { Node.node_id = 2; index = 1 } ];
            targets = [ 4; 9 ];
          })
   with
  | Message.Run_step
      { step_id = 5; timeout = Some t; feeds = [ (ep, tv) ]; fetches = [ fp ];
        targets = [ 4; 9 ] } ->
      Alcotest.(check (float 1e-9)) "timeout" 1.5 t;
      Alcotest.(check int) "feed ep" 1 ep.Node.node_id;
      Alcotest.(check int) "feed val" 3 (Tensor.flat_get_i tv 0);
      Alcotest.(check int) "fetch index" 1 fp.Node.index
  | _ -> Alcotest.fail "run_step");
  (match
     roundtrip_message
       (Message.Step_done
          {
            step_id = 5;
            result =
              Message.Failed
                {
                  Message.node = Some "MatMul";
                  device = None;
                  kind = "network_error";
                  message = "boom";
                };
          })
   with
  | Message.Step_done
      { result = Message.Failed { node = Some "MatMul"; kind = "network_error"; _ }; _ }
    -> ()
  | _ -> Alcotest.fail "step_done failed");
  match roundtrip_message (Message.Cancel_step { step_id = 2; reason = "r" }) with
  | Message.Cancel_step { step_id = 2; reason = "r" } -> ()
  | _ -> Alcotest.fail "cancel_step"

let test_message_bad_payload_is_protocol_error () =
  (* A Tensor frame whose payload is garbage decodes to Protocol_error,
     never an escaped Decode_error or Invalid_argument. *)
  let f = Frame.v ~stream_id:3 Frame.Tensor "\x02\x00\x00\x00ab\x09" in
  match Message.of_frame f with
  | _ -> Alcotest.fail "expected Frame_error"
  | exception Frame.Frame_error (Frame.Protocol_error _) -> ()
  | exception e -> Alcotest.failf "got %s" (Printexc.to_string e)

(* ----------------------------- backoff ------------------------------ *)

let test_backoff_deterministic () =
  let p = Backoff.policy ~base:0.1 ~multiplier:2.0 ~cap:5.0 ~jitter:0.5 ~seed:7 () in
  let delays () =
    let t = Backoff.create p in
    List.init 8 (fun _ -> Option.get (Backoff.next t))
  in
  Alcotest.(check (list (float 0.))) "same seed, same timeline" (delays ())
    (delays ());
  let other =
    Backoff.create
      (Backoff.policy ~base:0.1 ~multiplier:2.0 ~cap:5.0 ~jitter:0.5 ~seed:8 ())
  in
  let d2 = List.init 8 (fun _ -> Option.get (Backoff.next other)) in
  Alcotest.(check bool) "different seed, different jitter" true (delays () <> d2)

let test_backoff_growth_cap_and_jitter_bounds () =
  let p = Backoff.policy ~base:0.01 ~multiplier:2.0 ~cap:0.5 ~jitter:0.25 () in
  for attempt = 0 to 12 do
    let d = Backoff.delay_for p ~attempt in
    let raw = min (0.01 *. (2.0 ** float_of_int attempt)) 0.5 in
    Alcotest.(check bool)
      (Printf.sprintf "attempt %d in [0.75r, r]" attempt)
      true
      (d <= raw +. 1e-12 && d >= (0.75 *. raw) -. 1e-12)
  done;
  (* Far attempts saturate at the cap (modulo jitter). *)
  let d = Backoff.delay_for p ~attempt:40 in
  Alcotest.(check bool) "capped" true (d <= 0.5 && d >= 0.375)

let test_backoff_exhaustion_and_reset () =
  let t = Backoff.create (Backoff.policy ~base:0.0 ~max_attempts:2 ()) in
  Alcotest.(check bool) "1st" true (Backoff.next t <> None);
  Alcotest.(check bool) "2nd" true (Backoff.next t <> None);
  Alcotest.(check bool) "exhausted" true (Backoff.next t = None);
  Alcotest.(check bool) "wait exhausted" false (Backoff.wait t);
  Backoff.reset t;
  Alcotest.(check int) "attempts reset" 0 (Backoff.attempts t);
  Alcotest.(check bool) "usable again" true (Backoff.next t <> None)

(* ---------------------------- rendezvous ---------------------------- *)

let test_rendezvous_drop_step_scoping () =
  let r = Rendezvous.create () in
  let key step name =
    Rendezvous.step_key ~step_id:step ~send_device:"a" ~recv_device:"b"
      ~tensor_name:name
  in
  Rendezvous.send r ~key:(key 1 "x") (Value.Tensor (Tensor.scalar_f 1.0));
  Rendezvous.send r ~key:(key 1 "y") (Value.Tensor (Tensor.scalar_f 2.0));
  Rendezvous.send r ~key:(key 2 "x") (Value.Tensor (Tensor.scalar_f 3.0));
  Alcotest.(check int) "three pending" 3 (Rendezvous.pending_count r);
  Alcotest.(check int) "step 1 dropped" 2 (Rendezvous.drop_step r ~step_id:1);
  Alcotest.(check int) "one left" 1 (Rendezvous.pending_count r);
  (* Step 2's entry survives and is still receivable. *)
  (match Rendezvous.try_recv r ~key:(key 2 "x") with
  | Some (Value.Tensor t) ->
      Alcotest.(check (float 0.)) "survivor" 3.0 (Tensor.flat_get_f t 0)
  | _ -> Alcotest.fail "step 2 entry lost");
  Alcotest.(check int) "empty" 0 (Rendezvous.pending_count r);
  Alcotest.(check int) "idempotent" 0 (Rendezvous.drop_step r ~step_id:1)

let test_session_drain_scrubs_rendezvous () =
  (* A leaked entry on the runtime's shared rendezvous is scrubbed when
     the session drains the steps that produced it. *)
  let cluster =
    [ (("ps", 0), { Runtime.host = "127.0.0.1"; port = 1 });
      (("worker", 0), { Runtime.host = "127.0.0.1"; port = 2 }) ]
  in
  (* No listener: port never used because we never route off-process. *)
  let rt = Runtime.create (Runtime.config ~job:"worker" ~task:0 ~cluster ()) in
  Fun.protect ~finally:(fun () -> Runtime.shutdown rt) @@ fun () ->
  let r = Runtime.rendezvous rt in
  let b = B.create () in
  let x = B.const_f b 41.0 in
  let y = B.add b x (B.const_f b 1.0) in
  let session =
    Cluster.session
      (Cluster.create ~jobs:[ ("worker", 1, [ Device.CPU ]) ])
      ~remote:(Runtime.runner rt) (B.graph b)
  in
  ignore (Session.run session [ y ]);
  (* Simulate a tensor a failed step left behind under a step id the
     session has already issued. *)
  Rendezvous.send r
    ~key:
      (Rendezvous.step_key ~step_id:1 ~send_device:"a" ~recv_device:"b"
         ~tensor_name:"leak:0")
    (Value.Tensor (Tensor.scalar_f 0.0));
  Alcotest.(check int) "leaked entry pending" 1 (Rendezvous.pending_count r);
  Session.drain session;
  Alcotest.(check int) "drain scrubbed it" 0 (Rendezvous.pending_count r)

let test_routed_rendezvous_abort_not_sticky () =
  (* The process-global routed rendezvous outlives steps: an abort (from
     a Send kernel whose connection died) must wake waiters but not
     poison later steps. *)
  let r = Rendezvous.create ~route:(fun ~key:_ _ -> false) () in
  Rendezvous.abort r ~reason:"conn lost";
  Rendezvous.send r ~key:"step:1;a;b;x:0" (Value.Tensor (Tensor.scalar_f 1.0));
  (match Rendezvous.try_recv r ~key:"step:1;a;b;x:0" with
  | Some _ -> ()
  | None -> Alcotest.fail "routed rendezvous unusable after abort");
  (* A private rendezvous stays sticky — that is its per-step teardown. *)
  let priv = Rendezvous.create () in
  Rendezvous.abort priv ~reason:"step failed";
  match Rendezvous.try_recv priv ~key:"k" with
  | _ -> Alcotest.fail "private abort must stick"
  | exception Rendezvous.Aborted _ -> ()

(* ----------------------- placement determinism ---------------------- *)

(* Two processes of an SPMD cluster compile different step subsets of
   the same graph. Placement must come out identical anyway — this was
   a live deadlock: a chief that had also compiled an input-pipeline
   step placed the gradient ops differently from the serving ps, and
   the partitions' Send/Recv pairs no longer matched. *)
let build_two_device_graph () =
  let b = B.create () in
  let store = Octf_nn.Var_store.create b in
  let w =
    Octf_nn.Var_store.get store ~device:"/job:ps/task:0"
      ~init:Octf_nn.Init.zeros ~name:"w" [| 3; 1 |]
  in
  let x_in = B.placeholder b ~name:"x_in" ~shape:[| 4; 3 |] Dtype.F32 in
  let y_in = B.placeholder b ~name:"y_in" ~shape:[| 4; 1 |] Dtype.F32 in
  let enqueue, x, y =
    B.with_device b "/job:worker/task:0" (fun () ->
        let q = B.fifo_queue b ~name:"q" ~capacity:2 ~num_components:2 () in
        let enqueue = B.enqueue b q [ x_in; y_in ] in
        match B.dequeue b q ~num_components:2 with
        | [ x; y ] -> (enqueue, x, y)
        | _ -> assert false)
  in
  let loss =
    B.with_device b "/job:worker/task:0" (fun () ->
        Octf_nn.Losses.mse b
          ~predictions:(B.matmul b x w.Octf_nn.Var_store.read)
          ~targets:y)
  in
  let train = Octf_train.Optimizer.minimize store ~lr:0.1 ~loss () in
  let init = Octf_nn.Var_store.init_op store in
  (b, x_in, y_in, enqueue, loss, train, init)

let assignments b =
  List.init
    (Graph.node_count (B.graph b))
    (fun id ->
      match (Graph.get (B.graph b) id).Node.assigned_device with
      | Some d -> Device.to_string d
      | None -> "<unplaced>")

let test_spmd_placement_agrees_across_compile_orders () =
  let jobs = [ ("ps", 1, [ Device.CPU ]); ("worker", 1, [ Device.CPU ]) ] in
  (* Chief: compiles enqueue (feeds) first, then the train step. *)
  let b1, x1, y1, enq1, loss1, train1, init1 = build_two_device_graph () in
  let s1 = Cluster.session (Cluster.create ~jobs) (B.graph b1) in
  must s1 [ init1 ];
  let xs = Tensor.zeros Dtype.F32 [| 4; 3 |] in
  let ys = Tensor.zeros Dtype.F32 [| 4; 1 |] in
  must ~feeds:[ (x1, xs); (y1, ys) ] s1 [ enq1 ];
  must s1 [ loss1; train1 ];
  (* Server: only ever compiles the train step. *)
  let b2, _, _, _, loss2, train2, init2 = build_two_device_graph () in
  let s2 = Cluster.session (Cluster.create ~jobs) (B.graph b2) in
  must s2 [ init2 ];
  (* The queue is empty in this process, so execution cannot finish —
     but placement happens at compile time, before the dequeue blocks.
     Run under a short deadline and ignore the structured cancellation. *)
  (match Session.run_unit ~deadline:0.3 s2 [ loss2; train2 ] with
  | () -> ()
  | exception Session.Run_error _ -> ());
  Alcotest.(check (list string))
    "identical device assignment regardless of compile history"
    (assignments b1) (assignments b2)

(* --------------------- two runtimes over loopback -------------------- *)

let free_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  Unix.close fd;
  port

(* One "process" of the in-test cluster: its own identically-built
   graph, session, and runtime — sharing nothing with its peer but the
   TCP sockets between them. *)
type party = {
  rt : Runtime.t;
  session : Session.t;
  loss : B.output;
  train : B.output;
  init : B.output;
  x_in : B.output;
  y_in : B.output;
  enqueue : B.output;
  w_read : B.output;
}

let spawn_party ~job ~cluster =
  let rt =
    Runtime.create
      (Runtime.config ~job ~task:0 ~cluster ~heartbeat_interval:0.05
         ~heartbeat_misses:3 ~connect_timeout:0.5 ~rpc_timeout:5.0
         ~backoff:(Backoff.policy ~base:0.02 ~multiplier:2.0 ~cap:0.1 ())
         ())
  in
  let b = B.create () in
  let store = Octf_nn.Var_store.create b in
  let w =
    Octf_nn.Var_store.get store ~device:"/job:ps/task:0"
      ~init:Octf_nn.Init.zeros ~name:"w" [| 2; 1 |]
  in
  let x_in = B.placeholder b ~name:"x_in" ~shape:[| 4; 2 |] Dtype.F32 in
  let y_in = B.placeholder b ~name:"y_in" ~shape:[| 4; 1 |] Dtype.F32 in
  let enqueue, x, y =
    B.with_device b "/job:worker/task:0" (fun () ->
        let q = B.fifo_queue b ~name:"q" ~capacity:4 ~num_components:2 () in
        let enqueue = B.enqueue b q [ x_in; y_in ] in
        match B.dequeue b q ~num_components:2 with
        | [ x; y ] -> (enqueue, x, y)
        | _ -> assert false)
  in
  let loss =
    B.with_device b "/job:worker/task:0" (fun () ->
        Octf_nn.Losses.mse b
          ~predictions:(B.matmul b x w.Octf_nn.Var_store.read)
          ~targets:y)
  in
  let train = Octf_train.Optimizer.minimize store ~lr:0.2 ~loss () in
  let init = Octf_nn.Var_store.init_op store in
  let octf_cluster =
    Cluster.create
      ~jobs:[ ("ps", 1, [ Device.CPU ]); ("worker", 1, [ Device.CPU ]) ]
  in
  let session =
    Cluster.session octf_cluster ~remote:(Runtime.runner rt) (B.graph b)
  in
  Runtime.serve rt ~session;
  {
    rt; session; loss; train; init; x_in; y_in; enqueue;
    w_read = w.Octf_nn.Var_store.read;
  }

let batch () =
  ( Tensor.of_float_array [| 4; 2 |] [| 1.; 0.; 0.; 1.; 1.; 1.; 2.; 1. |],
    Tensor.of_float_array [| 4; 1 |] [| 1.; -1.; 0.; 1. |] )

let test_two_runtime_training_and_recovery () =
  let ps_port = free_port () and worker_port = free_port () in
  let cluster =
    [ (("ps", 0), { Runtime.host = "127.0.0.1"; port = ps_port });
      (("worker", 0), { Runtime.host = "127.0.0.1"; port = worker_port }) ]
  in
  let ps = ref (spawn_party ~job:"ps" ~cluster) in
  let chief = spawn_party ~job:"worker" ~cluster in
  Fun.protect ~finally:(fun () ->
      Runtime.shutdown chief.rt;
      Runtime.shutdown !ps.rt)
  @@ fun () ->
  let step () =
    let xs, ys = batch () in
    Session.run_unit
      ~feeds:[ (chief.x_in, xs); (chief.y_in, ys) ]
      chief.session [ chief.enqueue ];
    Session.run_unit chief.session [ chief.loss; chief.train ]
  in
  Session.run_unit chief.session [ chief.init ];
  for _ = 1 to 3 do step () done;
  let w1 =
    Tensor.to_float_array
      (List.hd (Session.run chief.session [ chief.w_read ]))
  in
  Alcotest.(check bool) "training moved w off zero" true
    (Array.exists (fun v -> Float.abs v > 1e-6) w1);
  (* Kill the ps runtime: the step must fail with a structured network
     cause — not hang, not escape as a raw exception. *)
  Runtime.shutdown !ps.rt;
  (match step () with
  | () -> Alcotest.fail "step against dead ps should fail"
  | exception Session.Run_error f -> (
      match f.Step_failure.cause with
      | Step_failure.Network_error _ | Step_failure.Cancelled _
      | Step_failure.Rendezvous_aborted _ ->
          ()
      | c ->
          Alcotest.failf "expected a network failure, got %s"
            (Step_failure.cause_kind c)));
  (* Session.drain retires the failed step's rendezvous leftovers on the
     shared routed rendezvous (the drop_step integration). *)
  Session.drain chief.session;
  Alcotest.(check int) "no leaked rendezvous entries after drain" 0
    (Rendezvous.pending_count (Runtime.rendezvous chief.rt));
  (* Restart the ps "process" on the same address; the chief's next
     dial (after backoff) must reconnect and training must resume. *)
  ps := spawn_party ~job:"ps" ~cluster;
  (* Early attempts fail fast while the reconnect backoff is pacing the
     dials; keep retrying until the chief re-establishes the link. *)
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec retry_until f =
    match f () with
    | () -> ()
    | exception Session.Run_error fl ->
        if Unix.gettimeofday () < deadline then begin
          Thread.delay 0.05;
          retry_until f
        end
        else Alcotest.failf "did not recover: %s" (Step_failure.to_string fl)
  in
  retry_until (fun () -> Session.run_unit chief.session [ chief.init ]);
  for _ = 1 to 3 do retry_until step done;
  let w2 =
    Tensor.to_float_array
      (List.hd (Session.run chief.session [ chief.w_read ]))
  in
  Alcotest.(check bool) "training resumed after ps restart" true
    (Array.exists (fun v -> Float.abs v > 1e-6) w2)

let test_heartbeat_detects_wedged_peer () =
  (* A fake ps that completes the handshake, then goes silent: never
     answers pings. The runtime must declare it dead and fail the
     pending RPC instead of hanging. *)
  let port = free_port () in
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen listener 1;
  let wedged = ref None in
  let accepter =
    Thread.create
      (fun () ->
        match Unix.accept listener with
        | client, _ ->
            (* Read the chief's Hello, answer with ours, then wedge. *)
            let (_ : Frame.t) = Frame.read_fd client in
            Frame.write_fd client
              (Message.to_frame
                 (Message.Hello
                    { version = Message.version; job = "ps"; task = 0 }));
            wedged := Some client
        | exception Unix.Unix_error _ -> ())
      ()
  in
  let cluster =
    [ (("ps", 0), { Runtime.host = "127.0.0.1"; port }) ]
  in
  let rt =
    Runtime.create
      (Runtime.config ~job:"worker" ~task:0 ~cluster ~heartbeat_interval:0.05
         ~heartbeat_misses:2 ~connect_timeout:1.0 ~rpc_timeout:30.0
         ~backoff:(Backoff.policy ~base:0.02 ())
         ())
  in
  Fun.protect ~finally:(fun () ->
      Runtime.shutdown rt;
      (try Unix.close listener with Unix.Unix_error _ -> ());
      (match !wedged with
      | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
      | None -> ());
      Thread.join accepter)
  @@ fun () ->
  let runner = Runtime.runner rt in
  let started = Unix.gettimeofday () in
  match
    runner.Remote.run_partitions ~job:"ps" ~task:0 ~step_id:1 ~feeds:[]
      ~fetches:[] ~targets:[] ~deadline:None ~cancel:None
  with
  | Ok _ -> Alcotest.fail "rpc to a wedged peer cannot succeed"
  | Error f -> (
      let took = Unix.gettimeofday () -. started in
      Alcotest.(check bool)
        "failed via heartbeat, far sooner than the 30 s rpc timeout" true
        (took < 10.0);
      match f.Step_failure.cause with
      | Step_failure.Network_error _ -> ()
      | c ->
          Alcotest.failf "expected Network_error, got %s"
            (Step_failure.cause_kind c))

let test_write_to_dead_peer_is_structured () =
  (* Runtime.create ignores SIGPIPE process-wide, so a write racing a
     peer's death raises EPIPE and surfaces as a structured
     Network_error — with the default disposition it would kill the
     whole test process right here. *)
  let rt =
    Runtime.create (Runtime.config ~job:"worker" ~task:0 ~cluster:[] ())
  in
  Fun.protect ~finally:(fun () -> Runtime.shutdown rt) @@ fun () ->
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.close b;
  let conn = Transport.create a ~peer_job:"ps" ~peer_task:0 in
  Fun.protect ~finally:(fun () -> Transport.close conn) @@ fun () ->
  match
    for _ = 1 to 16 do
      Transport.send conn (Message.Ping { seq = 1 })
    done
  with
  | () -> Alcotest.fail "writes to a closed peer must fail"
  | exception Step_failure.Error f -> (
      match f.Step_failure.cause with
      | Step_failure.Network_error _ -> ()
      | c ->
          Alcotest.failf "expected Network_error, got %s"
            (Step_failure.cause_kind c))
  | exception e ->
      Alcotest.failf "expected a structured failure, got %s"
        (Printexc.to_string e)

let test_chief_restart_reuses_low_step_ids () =
  (* A restarted chief's session counter starts over at step 1. The
     surviving ps retired that id on behalf of the dead chief; the new
     chief's connection must purge those retirements, or its tensors
     are dropped as "late" and its early steps hang to the rpc
     timeout. *)
  let ps_port = free_port () and worker_port = free_port () in
  let cluster =
    [ (("ps", 0), { Runtime.host = "127.0.0.1"; port = ps_port });
      (("worker", 0), { Runtime.host = "127.0.0.1"; port = worker_port }) ]
  in
  let ps = spawn_party ~job:"ps" ~cluster in
  let mk_chief () =
    Runtime.create
      (Runtime.config ~job:"worker" ~task:0 ~cluster ~heartbeat_interval:0.05
         ~heartbeat_misses:3 ~connect_timeout:1.0 ~rpc_timeout:5.0
         ~backoff:(Backoff.policy ~base:0.02 ())
         ())
  in
  let chief1 = mk_chief () in
  let chief2 = ref None in
  Fun.protect ~finally:(fun () ->
      Runtime.shutdown chief1;
      (match !chief2 with Some rt -> Runtime.shutdown rt | None -> ());
      Runtime.shutdown ps.rt)
  @@ fun () ->
  (* Chief #1 runs step 1 on the ps, which retires the id afterwards. *)
  (match
     (Runtime.runner chief1).Remote.run_partitions ~job:"ps" ~task:0
       ~step_id:1 ~feeds:[] ~fetches:[] ~targets:[] ~deadline:None
       ~cancel:None
   with
  | Ok _ -> ()
  | Error f ->
      Alcotest.failf "chief #1 step failed: %s" (Step_failure.to_string f));
  Runtime.shutdown chief1;
  (* Chief #2 is the restarted chief process: same identity, fresh step
     counter. Its tensor for step 1 must reach the ps's rendezvous, not
     be dropped against the dead chief's retirement of the same id. *)
  let rt2 = mk_chief () in
  chief2 := Some rt2;
  let key =
    Rendezvous.step_key ~step_id:1
      ~send_device:"/job:worker/task:0/device:CPU:0"
      ~recv_device:"/job:ps/task:0/device:CPU:0" ~tensor_name:"probe:0"
  in
  let deadline = Unix.gettimeofday () +. 8.0 in
  let rec attempt () =
    match
      Rendezvous.send (Runtime.rendezvous rt2) ~key
        (Value.Tensor (Tensor.scalar_f 7.0))
    with
    | () -> ()
    | exception Step_failure.Error _ when Unix.gettimeofday () < deadline ->
        (* reconnect pacing: early dials may fail fast *)
        Thread.delay 0.05;
        attempt ()
  in
  attempt ();
  let rec wait () =
    match Rendezvous.try_recv (Runtime.rendezvous ps.rt) ~key with
    | Some _ -> ()
    | None ->
        if Unix.gettimeofday () > deadline then
          Alcotest.fail "restarted chief's step-1 tensor was dropped as late"
        else begin
          Thread.delay 0.02;
          wait ()
        end
  in
  wait ()

let test_slow_frame_counts_as_liveness () =
  (* A peer pushing one large frame cannot interleave pongs (its write
     mutex is held for the duration), and no complete message arrives
     at the receiver until the frame ends. Byte arrival alone must keep
     the connection alive well past the heartbeat miss budget. *)
  let port = free_port () in
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen listener 1;
  let client_fd = ref None in
  let dribbler =
    Thread.create
      (fun () ->
        match Unix.accept listener with
        | exception Unix.Unix_error _ -> ()
        | client, _ ->
            client_fd := Some client;
            (* Handshake, then drain the chief's frames (pings,
               run_step) on the side so its writes never block. *)
            let (_ : Frame.t) = Frame.read_fd client in
            Frame.write_fd client
              (Message.to_frame
                 (Message.Hello
                    { version = Message.version; job = "ps"; task = 0 }));
            ignore
              (Thread.create
                 (fun () ->
                   try
                     while true do
                       ignore (Frame.read_fd client)
                     done
                   with _ -> ())
                 ());
            (* Dribble one tensor frame over ~0.8 s — more than five
               times the miss budget — never answering a single ping. *)
            let bytes =
              Frame.encode
                (Message.to_frame
                   (Message.Tensor
                      {
                        key = "step:1;a;b;slow:0";
                        value =
                          Value.Tensor
                            (Tensor.of_float_array [| 256 |]
                               (Array.make 256 1.0));
                      }))
            in
            let n = String.length bytes in
            let chunk = max 1 ((n + 15) / 16) in
            let off = ref 0 in
            (try
               while !off < n do
                 let len = min chunk (n - !off) in
                 ignore (Unix.write_substring client bytes !off len);
                 off := !off + len;
                 Thread.delay 0.05
               done
             with Unix.Unix_error _ -> ()))
      ()
  in
  let cluster = [ (("ps", 0), { Runtime.host = "127.0.0.1"; port }) ] in
  let rt =
    Runtime.create
      (Runtime.config ~job:"worker" ~task:0 ~cluster ~heartbeat_interval:0.05
         ~heartbeat_misses:3 ~connect_timeout:1.0 ~rpc_timeout:30.0
         ~backoff:(Backoff.policy ~base:0.02 ())
         ())
  in
  let runner = Runtime.runner rt in
  (* Dial the slow ps; the rpc itself never completes and is failed by
     the shutdown below. *)
  let rpc =
    Thread.create
      (fun () ->
        ignore
          (runner.Remote.run_partitions ~job:"ps" ~task:0 ~step_id:1 ~feeds:[]
             ~fetches:[] ~targets:[] ~deadline:None ~cancel:None))
      ()
  in
  Fun.protect ~finally:(fun () ->
      Runtime.shutdown rt;
      (try Unix.close listener with Unix.Unix_error _ -> ());
      (match !client_fd with
      | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
      | None -> ());
      Thread.join dribbler;
      Thread.join rpc)
  @@ fun () ->
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec wait () =
    match
      Rendezvous.try_recv (Runtime.rendezvous rt) ~key:"step:1;a;b;slow:0"
    with
    | Some _ -> ()
    | None ->
        if Unix.gettimeofday () > deadline then
          Alcotest.fail
            "slow frame never arrived: heartbeat cut the connection mid-frame"
        else begin
          Thread.delay 0.02;
          wait ()
        end
  in
  wait ()

let suite =
  [
    QCheck_alcotest.to_alcotest prop_frame_roundtrip;
    Alcotest.test_case "malformed frames" `Quick test_malformed_frames;
    Alcotest.test_case "encode rejects oversize payload" `Quick
      test_encode_rejects_oversize_payload;
    Alcotest.test_case "checksum is positional" `Quick
      test_frame_checksum_positional;
    Alcotest.test_case "wire tensor roundtrip" `Quick
      test_wire_tensor_roundtrip;
    Alcotest.test_case "wire truncation" `Quick
      test_wire_truncation_is_decode_error;
    Alcotest.test_case "message roundtrips" `Quick test_message_roundtrips;
    Alcotest.test_case "bad payload" `Quick
      test_message_bad_payload_is_protocol_error;
    Alcotest.test_case "backoff deterministic" `Quick
      test_backoff_deterministic;
    Alcotest.test_case "backoff growth, cap, jitter" `Quick
      test_backoff_growth_cap_and_jitter_bounds;
    Alcotest.test_case "backoff exhaustion and reset" `Quick
      test_backoff_exhaustion_and_reset;
    Alcotest.test_case "rendezvous drop_step scoping" `Quick
      test_rendezvous_drop_step_scoping;
    Alcotest.test_case "session drain scrubs shared rendezvous" `Quick
      test_session_drain_scrubs_rendezvous;
    Alcotest.test_case "routed rendezvous abort not sticky" `Quick
      test_routed_rendezvous_abort_not_sticky;
    Alcotest.test_case "SPMD placement determinism" `Quick
      test_spmd_placement_agrees_across_compile_orders;
    Alcotest.test_case "two-runtime train, kill, reconnect" `Quick
      test_two_runtime_training_and_recovery;
    Alcotest.test_case "heartbeat detects wedged peer" `Quick
      test_heartbeat_detects_wedged_peer;
    Alcotest.test_case "dead-peer write is structured" `Quick
      test_write_to_dead_peer_is_structured;
    Alcotest.test_case "chief restart reuses low step ids" `Quick
      test_chief_restart_reuses_low_step_ids;
    Alcotest.test_case "slow frame counts as liveness" `Quick
      test_slow_frame_counts_as_liveness;
  ]
