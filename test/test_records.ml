(* Record files and the Figure 1 reader operations. *)

open Octf_tensor
open Octf
module B = Builder

let tmp () = Filename.temp_file "octf_rec" ".rec"

let test_container_roundtrip () =
  let path = tmp () in
  let records = [ "alpha"; ""; String.make 1000 'x' ] in
  Record_format.write_records path records;
  Alcotest.(check (list string)) "roundtrip" records
    (Record_format.read_records path);
  Record_format.append_records path [ "tail" ];
  Alcotest.(check int) "appended" 4
    (List.length (Record_format.read_records path));
  Sys.remove path

let test_container_corruption_detected () =
  let path = tmp () in
  Record_format.write_records path [ "hello world" ];
  (* Flip one payload byte. *)
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string contents in
  Bytes.set b (Bytes.length b - 6) 'X';
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc;
  (match Record_format.read_records path with
  | _ -> Alcotest.fail "expected checksum failure"
  | exception Record_format.Corrupt _ -> ());
  Sys.remove path

let check_corrupt_file what path =
  match Record_format.read_records path with
  | _ -> Alcotest.failf "%s: expected Corrupt" what
  | exception Record_format.Corrupt _ -> ()
  | exception e ->
      Alcotest.failf "%s: expected Corrupt, got %s" what
        (Printexc.to_string e)

(* A torn write at any offset must be a structured Corrupt, never a
   silently-shortened record list or an escaped End_of_file. *)
let test_container_truncation_all_offsets () =
  let path = tmp () in
  Record_format.write_records path [ "alpha"; "beta"; String.make 64 'z' ];
  let ic = open_in_bin path in
  let full = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (* Exact record boundaries are valid short files; anywhere else a
     truncation is torn. Magic is 8 bytes; each record costs
     8 (length) + body + 4 (checksum). *)
  let boundaries =
    List.fold_left
      (fun acc body -> (List.hd acc + 8 + String.length body + 4) :: acc)
      [ 8 ]
      [ "alpha"; "beta"; String.make 64 'z' ]
  in
  for len = 0 to String.length full - 1 do
    let oc = open_out_bin path in
    output_string oc (String.sub full 0 len);
    close_out oc;
    if List.mem len boundaries then
      ignore (Record_format.read_records path : string list)
    else check_corrupt_file (Printf.sprintf "truncated at %d" len) path
  done;
  Sys.remove path

let test_example_corruption () =
  let encoded =
    Record_format.encode_example
      [
        ("pixels", Tensor.of_float_array [| 3 |] [| 1.0; 2.0; 3.0 |]);
        ("tag", Tensor.scalar_s "cat");
      ]
  in
  (* Truncation at every prefix of the example string. *)
  for len = 0 to String.length encoded - 1 do
    match Record_format.decode_example (String.sub encoded 0 len) with
    | _ -> Alcotest.failf "truncated example at %d: expected Corrupt" len
    | exception Record_format.Corrupt _ -> ()
    | exception e ->
        Alcotest.failf "truncated example at %d: expected Corrupt, got %s" len
          (Printexc.to_string e)
  done;
  (* Bit flips must never escape as anything but Corrupt (structural
     damage) or a successful parse (payload damage). *)
  for i = 0 to String.length encoded - 1 do
    let b = Bytes.of_string encoded in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
    match Record_format.decode_example (Bytes.to_string b) with
    | _ -> ()
    | exception Record_format.Corrupt _ -> ()
    | exception e ->
        Alcotest.failf "bit flip at %d: expected Corrupt, got %s" i
          (Printexc.to_string e)
  done

let test_example_roundtrip () =
  let entries =
    [
      ("pixels", Tensor.of_float_array [| 2; 2 |] [| 0.1; 0.2; 0.3; 0.4 |]);
      ("label", Tensor.scalar_i 3);
      ("name", Tensor.scalar_s "cat");
    ]
  in
  let decoded =
    Record_format.decode_example (Record_format.encode_example entries)
  in
  Alcotest.(check int) "count" 3 (List.length decoded);
  Alcotest.(check bool) "pixels" true
    (Tensor.approx_equal (List.assoc "pixels" decoded)
       (List.assoc "pixels" entries));
  Alcotest.(check int) "label" 3
    (Tensor.flat_get_i (List.assoc "label" decoded) 0);
  Alcotest.(check string) "name" "cat"
    (Tensor.get_s (List.assoc "name" decoded) [||])

let prop_example_roundtrip =
  QCheck.Test.make ~name:"example codec roundtrip" ~count:50
    QCheck.(small_list (float_range (-100.) 100.))
    (fun l ->
      l = []
      ||
      let a = Array.of_list l in
      let t = Tensor.of_float_array [| Array.length a |] a in
      let back =
        Record_format.decode_example
          (Record_format.encode_example [ ("x", t) ])
      in
      Tensor.approx_equal ~tol:0.0 (List.assoc "x" back) t)

let test_reader_ops_drain_in_order () =
  let path = tmp () in
  let records =
    List.init 5 (fun i ->
        Record_format.encode_example [ ("v", Tensor.scalar_f (float_of_int i)) ])
  in
  Record_format.write_records path records;
  let b = B.create () in
  let reader = B.record_reader b ~files:[ path ] () in
  let record = B.read_record b reader in
  let v = List.hd (B.decode_example b record ~features:[ "v" ]) in
  let s = Session.create (B.graph b) in
  for i = 0 to 4 do
    let value = List.hd (Session.run s [ v ]) in
    Alcotest.(check (float 0.)) "in order" (float_of_int i)
      (Tensor.flat_get_f value 0)
  done;
  (* Exhausted: end-of-input surfaces as a step error. *)
  (match Session.run s [ v ] with
  | _ -> Alcotest.fail "expected end of input"
  | exception Session.Run_error _ -> ());
  Sys.remove path

let test_reader_multiple_files () =
  let p1 = tmp () and p2 = tmp () in
  let enc i =
    Record_format.encode_example [ ("v", Tensor.scalar_i i) ]
  in
  Record_format.write_records p1 [ enc 1; enc 2 ];
  Record_format.write_records p2 [ enc 3 ];
  let b = B.create () in
  let reader = B.record_reader b ~files:[ p1; p2 ] () in
  let v =
    List.hd (B.decode_example b (B.read_record b reader) ~features:[ "v" ])
  in
  let s = Session.create (B.graph b) in
  let total = ref 0 in
  for _ = 1 to 3 do
    total := !total + Tensor.flat_get_i (List.hd (Session.run s [ v ])) 0
  done;
  Alcotest.(check int) "all files read" 6 !total;
  Sys.remove p1;
  Sys.remove p2

let test_missing_feature_errors () =
  let path = tmp () in
  Record_format.write_records path
    [ Record_format.encode_example [ ("a", Tensor.scalar_f 1.0) ] ];
  let b = B.create () in
  let reader = B.record_reader b ~files:[ path ] () in
  let v =
    List.hd
      (B.decode_example b (B.read_record b reader) ~features:[ "missing" ])
  in
  let s = Session.create (B.graph b) in
  (match Session.run s [ v ] with
  | _ -> Alcotest.fail "expected missing-feature error"
  | exception Session.Run_error _ -> ());
  Sys.remove path

let test_image_dataset_writer () =
  let path = tmp () in
  let rng = Rng.create 8 in
  Octf_data.Records.write_image_dataset rng ~path ~examples:10 ~size:6
    ~channels:1 ~classes:3;
  let records = Record_format.read_records path in
  Alcotest.(check int) "ten records" 10 (List.length records);
  let first = Record_format.decode_example (List.hd records) in
  Alcotest.(check (array int)) "pixels shape" [| 6; 6; 1 |]
    (Tensor.shape (List.assoc "pixels" first));
  let label = Tensor.flat_get_i (List.assoc "label" first) 0 in
  Alcotest.(check bool) "label range" true (label >= 0 && label < 3);
  Sys.remove path

let suite =
  [
    Alcotest.test_case "container roundtrip" `Quick test_container_roundtrip;
    Alcotest.test_case "corruption detected" `Quick
      test_container_corruption_detected;
    Alcotest.test_case "truncation at every offset" `Quick
      test_container_truncation_all_offsets;
    Alcotest.test_case "example corruption" `Quick test_example_corruption;
    Alcotest.test_case "example roundtrip" `Quick test_example_roundtrip;
    QCheck_alcotest.to_alcotest prop_example_roundtrip;
    Alcotest.test_case "reader drains in order" `Quick
      test_reader_ops_drain_in_order;
    Alcotest.test_case "multiple files" `Quick test_reader_multiple_files;
    Alcotest.test_case "missing feature" `Quick test_missing_feature_errors;
    Alcotest.test_case "image dataset writer" `Quick test_image_dataset_writer;
  ]
