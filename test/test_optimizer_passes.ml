(* Master-side graph optimizations (§5): CSE and constant folding. *)

open Octf_tensor
open Octf
module B = Builder

let all_ids b = List.init (Graph.node_count (B.graph b)) (fun i -> i)

let test_constant_folding () =
  let b = B.create () in
  let x = B.add b (B.const_f b 2.0) (B.const_f b 3.0) in
  let y = B.mul b x (B.const_f b 4.0) in
  Graph_optimizer.optimize (B.graph b) ~nodes:(all_ids b) ~feeds:[];
  (* y's producer chain must now be folded consts. *)
  let y_node = Graph.get (B.graph b) y.B.node.Node.id in
  let all_const =
    Array.for_all
      (fun (e : Node.endpoint) ->
        (Graph.get (B.graph b) e.node_id).Node.op_type = "Const")
      y_node.Node.inputs
  in
  Alcotest.(check bool) "inputs folded" true all_const;
  (* Semantics preserved. *)
  let s = Session.create ~optimize:false (B.graph b) in
  Alcotest.(check (float 0.)) "value" 20.0
    (Tensor.flat_get_f (List.hd (Session.run s [ y ])) 0)

let test_cse_merges_duplicates () =
  let b = B.create () in
  let x = B.placeholder b Dtype.F32 in
  let a = B.square b x in
  let c = B.square b x in
  let y = B.add b a c in
  Graph_optimizer.optimize (B.graph b) ~nodes:(all_ids b)
    ~feeds:[ B.endpoint_of_output x ];
  let y_node = Graph.get (B.graph b) y.B.node.Node.id in
  Alcotest.(check int) "both inputs point at one node"
    y_node.Node.inputs.(0).Node.node_id
    y_node.Node.inputs.(1).Node.node_id;
  let s = Session.create ~optimize:false (B.graph b) in
  Alcotest.(check (float 0.)) "value" 18.0
    (Tensor.flat_get_f
       (List.hd (Session.run ~feeds:[ (x, Tensor.scalar_f 3.0) ] s [ y ]))
       0)

let test_stateful_never_merged () =
  let b = B.create () in
  let r1 = B.random_uniform b [| 2 |] in
  let r2 = B.random_uniform b [| 2 |] in
  let y = B.add b r1 r2 in
  Graph_optimizer.optimize (B.graph b) ~nodes:(all_ids b) ~feeds:[];
  let y_node = Graph.get (B.graph b) y.B.node.Node.id in
  Alcotest.(check bool) "random ops stay distinct" true
    (y_node.Node.inputs.(0).Node.node_id
    <> y_node.Node.inputs.(1).Node.node_id)

let test_fed_nodes_not_folded () =
  let b = B.create () in
  let x = B.placeholder b Dtype.F32 in
  let y = B.neg b x in
  Graph_optimizer.optimize (B.graph b) ~nodes:(all_ids b)
    ~feeds:[ B.endpoint_of_output x ];
  let y_node = Graph.get (B.graph b) y.B.node.Node.id in
  Alcotest.(check string) "still reads the placeholder" "Placeholder"
    (Graph.get (B.graph b) y_node.Node.inputs.(0).Node.node_id).Node.op_type

let test_session_optimized_run_matches () =
  (* End to end: optimize on vs off produce identical results. *)
  let build () =
    let b = B.create () in
    let x = B.placeholder b Dtype.F32 in
    let k = B.add b (B.const_f b 1.0) (B.const_f b 1.0) in
    let y = B.add b (B.mul b x k) (B.mul b x k) in
    (b, x, y)
  in
  let b1, x1, y1 = build () in
  let b2, x2, y2 = build () in
  let v s x y =
    Tensor.flat_get_f
      (List.hd
         (Session.run ~feeds:[ (x, Tensor.scalar_f 2.5) ] s [ y ]))
      0
  in
  let s1 = Session.create ~optimize:true (B.graph b1) in
  let s2 = Session.create ~optimize:false (B.graph b2) in
  Alcotest.(check (float 1e-9)) "same result" (v s2 x2 y2) (v s1 x1 y1)

let test_reprune_after_optimize () =
  (* CSE leaves the losing duplicate disconnected; the session must
     re-prune after optimizing or the orphan still executes. Count the
     Mul kernel invocations in the step stats: exactly one. *)
  let b = B.create () in
  let x = B.placeholder b Dtype.F32 in
  let k = B.const_f b 3.0 in
  let y = B.add b (B.mul b x k) (B.mul b x k) in
  let s = Session.create ~optimize:true (B.graph b) in
  let options =
    Session.Run_options.v
      ~feeds:[ (x, Tensor.scalar_f 2.0) ]
      ~collect_stats:true ()
  in
  let fetched, md = Session.run_with_metadata ~options s [ y ] in
  Alcotest.(check (float 1e-9)) "value" 12.0
    (Tensor.flat_get_f (List.hd fetched) 0);
  let stats = Option.get md.Session.Run_metadata.step_stats in
  let muls =
    List.length
      (List.filter
         (fun ns -> ns.Step_stats.op_type = "Mul")
         stats.Step_stats.nodes)
  in
  Alcotest.(check int) "one Mul after CSE + re-prune" 1 muls

let test_is_pure () =
  let b = B.create () in
  let c = B.const_f b 1.0 in
  let v = B.variable b ~name:"v" ~dtype:Dtype.F32 ~shape:[||] () in
  let p = B.placeholder b Dtype.F32 in
  Alcotest.(check bool) "const pure" true (Graph_optimizer.is_pure c.B.node);
  Alcotest.(check bool) "variable impure" false
    (Graph_optimizer.is_pure v.B.node);
  Alcotest.(check bool) "placeholder impure" false
    (Graph_optimizer.is_pure p.B.node)

(* The declared pass pipeline: run with the default passes must agree
   with the pruned-only step on fetched values while executing fewer
   nodes, and pass order is the caller's to choose. *)
let test_run_pipeline () =
  let b = B.create () in
  let x = B.placeholder b Dtype.F32 in
  let k = B.add b (B.const_f b 2.0) (B.const_f b 3.0) in
  let y1 = B.mul b x k in
  let y2 = B.mul b x (B.add b (B.const_f b 2.0) (B.const_f b 3.0)) in
  let z = B.add b y1 y2 in
  let feeds = [ B.endpoint_of_output x ] in
  let fetches = [ B.endpoint_of_output z ] in
  let pruned_only =
    Graph_optimizer.run (B.graph b) ~passes:[] ~feeds ~fetches ~targets:[]
  in
  let optimized =
    Graph_optimizer.run (B.graph b)
      ~passes:Graph_optimizer.default_pipeline ~feeds ~fetches ~targets:[]
  in
  Alcotest.(check bool) "fold+cse shrank the step" true
    (List.length optimized < List.length pruned_only);
  (* the optimized set carries no non-Const producer pair duplicates:
     the two x*k branches merged *)
  let muls =
    List.filter
      (fun id -> (Graph.get (B.graph b) id).Node.op_type = "Mul")
      optimized
  in
  Alcotest.(check int) "one surviving Mul" 1 (List.length muls)

let test_freeze_pass () =
  let b = B.create () in
  let x = B.placeholder b Dtype.F32 in
  let v = B.variable b ~name:"weights" ~dtype:Dtype.F32 ~shape:[||] () in
  let y = B.mul b x (B.read b v) in
  let feeds = [ B.endpoint_of_output x ] in
  let fetches = [ B.endpoint_of_output y ] in
  let values = function
    | "weights" -> Some (Tensor.scalar_f 4.0)
    | _ -> None
  in
  let nodes =
    Graph_optimizer.run (B.graph b)
      ~passes:[ Graph_optimizer.Freeze values; Graph_optimizer.Prune ]
      ~feeds ~fetches ~targets:[]
  in
  let ops = List.map (fun id -> (Graph.get (B.graph b) id).Node.op_type) nodes in
  Alcotest.(check bool) "Variable pruned away" false
    (List.mem "Variable" ops);
  Alcotest.(check bool) "Read pruned away" false (List.mem "Read" ops);
  Alcotest.(check bool) "a Const took its place" true (List.mem "Const" ops);
  (* an unresolvable variable is left alone *)
  let b2 = B.create () in
  let x2 = B.placeholder b2 Dtype.F32 in
  let v2 = B.variable b2 ~name:"other" ~dtype:Dtype.F32 ~shape:[||] () in
  let y2 = B.mul b2 x2 (B.read b2 v2) in
  let nodes2 =
    Graph_optimizer.run (B.graph b2)
      ~passes:[ Graph_optimizer.Freeze values; Graph_optimizer.Prune ]
      ~feeds:[ B.endpoint_of_output x2 ]
      ~fetches:[ B.endpoint_of_output y2 ]
      ~targets:[]
  in
  let ops2 =
    List.map (fun id -> (Graph.get (B.graph b2) id).Node.op_type) nodes2
  in
  Alcotest.(check bool) "unresolved Variable kept" true
    (List.mem "Variable" ops2)

let test_pass_names () =
  Alcotest.(check (list string))
    "pass names"
    [ "prune"; "constant_fold"; "cse"; "fuse"; "freeze" ]
    (List.map Graph_optimizer.pass_name
       [
         Graph_optimizer.Prune;
         Graph_optimizer.Constant_fold;
         Graph_optimizer.Cse;
         Graph_optimizer.Fuse;
         Graph_optimizer.Freeze (fun _ -> None);
       ])

(* Control dependencies are a set: two otherwise identical nodes whose
   control lists differ only in order must merge. Built via
   Graph.add_node because Builder.op sorts control inputs itself, which
   would mask the sensitivity. *)
let test_cse_control_input_order () =
  let b = B.create () in
  let x = B.placeholder b Dtype.F32 in
  let c1 = B.square b x in
  let c2 = B.sqrt b x in
  let g = B.graph b in
  let xe = B.endpoint_of_output x in
  let n1 =
    Graph.add_node g ~name:"n1" ~inputs:[ xe ]
      ~control_inputs:[ c1.B.node.Node.id; c2.B.node.Node.id ]
      ~op_type:"Neg" ()
  in
  let n2 =
    Graph.add_node g ~name:"n2" ~inputs:[ xe ]
      ~control_inputs:[ c2.B.node.Node.id; c1.B.node.Node.id ]
      ~op_type:"Neg" ()
  in
  let y =
    Graph.add_node g ~name:"y"
      ~inputs:[ Node.endpoint n1.Node.id 0; Node.endpoint n2.Node.id 0 ]
      ~op_type:"Add" ()
  in
  Graph_optimizer.optimize g
    ~nodes:(List.init (Graph.node_count g) Fun.id)
    ~feeds:[ xe ];
  let y_node = Graph.get g y.Node.id in
  Alcotest.(check int) "order-permuted control sets merged"
    y_node.Node.inputs.(0).Node.node_id
    y_node.Node.inputs.(1).Node.node_id

(* Multi-output pure ops fold too: a Const-fed Split folds to one Const
   per output slot, letting the whole downstream chain fold. *)
let test_multi_output_constant_fold () =
  let b = B.create () in
  let c =
    B.const b (Tensor.of_float_array [| 2; 2 |] [| 1.0; 2.0; 3.0; 4.0 |])
  in
  let parts = B.split b c ~axis:0 ~num:2 in
  let y =
    match parts with
    | [ p0; p1 ] -> B.add b p0 p1
    | _ -> Alcotest.fail "split arity"
  in
  let z = B.neg b y in
  Graph_optimizer.optimize (B.graph b) ~nodes:(all_ids b) ~feeds:[];
  let z_node = Graph.get (B.graph b) z.B.node.Node.id in
  Alcotest.(check string) "folding propagated through Split" "Const"
    (Graph.get (B.graph b) z_node.Node.inputs.(0).Node.node_id).Node.op_type;
  let s = Session.create ~optimize:false (B.graph b) in
  let t = List.hd (Session.run s [ z ]) in
  Alcotest.(check (float 0.)) "value [0]" (-4.0) (Tensor.flat_get_f t 0);
  Alcotest.(check (float 0.)) "value [1]" (-6.0) (Tensor.flat_get_f t 1)

let suite =
  [
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "run pass pipeline" `Quick test_run_pipeline;
    Alcotest.test_case "freeze pass" `Quick test_freeze_pass;
    Alcotest.test_case "pass names" `Quick test_pass_names;
    Alcotest.test_case "cse merges" `Quick test_cse_merges_duplicates;
    Alcotest.test_case "cse ignores control-input order" `Quick
      test_cse_control_input_order;
    Alcotest.test_case "multi-output constant fold" `Quick
      test_multi_output_constant_fold;
    Alcotest.test_case "stateful never merged" `Quick test_stateful_never_merged;
    Alcotest.test_case "fed nodes kept" `Quick test_fed_nodes_not_folded;
    Alcotest.test_case "optimized run matches" `Quick
      test_session_optimized_run_matches;
    Alcotest.test_case "re-prune after optimize" `Quick
      test_reprune_after_optimize;
    Alcotest.test_case "is_pure" `Quick test_is_pure;
  ]
