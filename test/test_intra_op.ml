(* Intra-op parallelism: sharder unit tests, bit-identity across thread
   budgets, golden-value checks against naive reference kernels, and the
   elementwise bugfix regressions (floor-mod, select). *)

open Octf_tensor
module O = Tensor_ops

let with_threads n f =
  let saved = Parallel.threads () in
  Parallel.set_threads n;
  Fun.protect ~finally:(fun () -> Parallel.set_threads saved) f

(* Run [f] under each thread budget and assert the results are
   bit-identical ([Tensor.equal] is exact element equality). *)
let check_bit_identical msg f =
  let reference = with_threads 1 f in
  List.iter
    (fun t ->
      let r = with_threads t f in
      if not (Tensor.equal reference r) then
        Alcotest.failf "%s: %d-thread result differs from serial" msg t)
    [ 2; 4 ]

let check_t ?(tol = 1e-6) msg expected actual =
  if not (Tensor.approx_equal ~tol expected actual) then
    Alcotest.failf "%s: expected %s, got %s" msg (Tensor.to_string expected)
      (Tensor.to_string actual)

(* ------------------------------------------------------------------ *)
(* Parallel_for sharder                                                *)
(* ------------------------------------------------------------------ *)

let test_parallel_for_coverage () =
  with_threads 4 @@ fun () ->
  (* Sizes straddling chunk boundaries: every index must be written
     exactly once. *)
  List.iter
    (fun n ->
      let hits = Array.make n 0 in
      Parallel.parallel_for ~grain:256 n (fun lo hi ->
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done);
      Array.iteri
        (fun i c ->
          if c <> 1 then Alcotest.failf "n=%d: index %d written %d times" n i c)
        hits)
    [ 1; 255; 256; 257; 1023; 1024; 1025; 4099 ]

exception Boom

let test_parallel_for_exception () =
  with_threads 4 @@ fun () ->
  let raised =
    try
      Parallel.parallel_for ~grain:64 1024 (fun lo _ ->
          if lo >= 512 then raise Boom);
      false
    with Boom -> true
  in
  Alcotest.(check bool) "body exception reaches the caller" true raised

let test_parallel_for_nested () =
  with_threads 4 @@ fun () ->
  (* A nested parallel_for must run serially (no deadlock, no double
     budget) and still cover its range. *)
  let n = 2048 in
  let out = Array.make n 0.0 in
  Parallel.parallel_for ~grain:256 n (fun lo hi ->
      Parallel.parallel_for ~grain:1 (hi - lo) (fun ilo ihi ->
          for i = ilo to ihi - 1 do
            out.(lo + i) <- float_of_int (lo + i)
          done));
  Array.iteri
    (fun i v ->
      if v <> float_of_int i then Alcotest.failf "nested: index %d = %f" i v)
    out

(* ------------------------------------------------------------------ *)
(* Bit-identity across thread budgets                                  *)
(* ------------------------------------------------------------------ *)

let rand_t seed shape =
  let rng = Rng.create seed in
  Tensor.uniform rng shape ~lo:(-1.0) ~hi:1.0

let test_matmul_determinism () =
  (* Non-square, large enough that 4 threads really shard the rows. *)
  let a = rand_t 3 [| 200; 40 |] and b = rand_t 4 [| 40; 30 |] in
  let at = rand_t 5 [| 40; 200 |] and bt = rand_t 6 [| 30; 40 |] in
  check_bit_identical "matmul" (fun () -> O.matmul a b);
  check_bit_identical "matmul T_a" (fun () -> O.matmul ~transpose_a:true at b);
  check_bit_identical "matmul T_b" (fun () -> O.matmul ~transpose_b:true a bt);
  check_bit_identical "matmul T_ab" (fun () ->
      O.matmul ~transpose_a:true ~transpose_b:true at bt)

let test_conv2d_determinism () =
  let img = rand_t 7 [| 4; 16; 16; 4 |] in
  let filt = rand_t 8 [| 3; 3; 4; 8 |] in
  List.iter
    (fun (name, padding) ->
      check_bit_identical ("conv2d " ^ name) (fun () ->
          O.conv2d img filt ~strides:(1, 1) ~padding);
      let dy =
        with_threads 1 (fun () -> O.conv2d img filt ~strides:(1, 1) ~padding)
      in
      check_bit_identical ("conv2d_grad_input " ^ name) (fun () ->
          O.conv2d_grad_input ~input_shape:(Tensor.shape img) filt dy
            ~strides:(1, 1) ~padding);
      check_bit_identical ("conv2d_grad_filter " ^ name) (fun () ->
          O.conv2d_grad_filter ~filter_shape:(Tensor.shape filt) img dy
            ~strides:(1, 1) ~padding))
    [ ("same", O.Same); ("valid", O.Valid) ]

let test_elementwise_determinism () =
  let x = rand_t 9 [| 20000 |] and y = rand_t 10 [| 20000 |] in
  check_bit_identical "map" (fun () -> O.sigmoid x);
  check_bit_identical "map2 same shape" (fun () -> O.add x y);
  let m = rand_t 11 [| 150; 80 |] and row = rand_t 12 [| 80 |] in
  check_bit_identical "map2 broadcast" (fun () -> O.mul m row);
  check_bit_identical "select broadcast" (fun () ->
      O.select (O.greater m row) m row);
  check_bit_identical "transpose" (fun () -> O.transpose m);
  check_bit_identical "broadcast_to" (fun () ->
      O.broadcast_to row [| 150; 80 |])

let test_reduction_determinism () =
  let m = rand_t 13 [| 300; 100 |] in
  check_bit_identical "reduce_sum rows" (fun () -> O.reduce_sum ~axes:[ 1 ] m);
  check_bit_identical "reduce_sum cols" (fun () -> O.reduce_sum ~axes:[ 0 ] m);
  check_bit_identical "reduce_sum all" (fun () -> O.reduce_sum m);
  check_bit_identical "reduce_mean keep_dims" (fun () ->
      O.reduce_mean ~axes:[ 0 ] ~keep_dims:true m);
  check_bit_identical "reduce_max" (fun () -> O.reduce_max ~axes:[ 1 ] m);
  let c = rand_t 14 [| 12; 25; 40 |] in
  check_bit_identical "reduce middle axis" (fun () ->
      O.reduce_sum ~axes:[ 1 ] c);
  check_bit_identical "reduce two axes" (fun () ->
      O.reduce_sum ~axes:[ 0; 2 ] c)

let test_softmax_determinism () =
  let logits = rand_t 15 [| 300; 50 |] in
  let labels = with_threads 1 (fun () -> O.softmax (rand_t 16 [| 300; 50 |])) in
  check_bit_identical "softmax" (fun () -> O.softmax logits);
  check_bit_identical "log_softmax" (fun () -> O.log_softmax logits);
  check_bit_identical "softmax_cross_entropy" (fun () ->
      O.softmax_cross_entropy ~logits ~labels)

(* ------------------------------------------------------------------ *)
(* Golden values: parallel kernels vs naive references                 *)
(* ------------------------------------------------------------------ *)

let test_matmul_golden () =
  let m = 37 and k = 23 and n = 19 in
  let a = rand_t 17 [| m; k |] and b = rand_t 18 [| k; n |] in
  let da = Tensor.float_buffer a and db = Tensor.float_buffer b in
  let expect =
    Tensor.init_f [| m; n |] (fun idx ->
        let acc = ref 0.0 in
        for p = 0 to k - 1 do
          acc := !acc +. (da.((idx.(0) * k) + p) *. db.((p * n) + idx.(1)))
        done;
        !acc)
  in
  with_threads 4 @@ fun () ->
  check_t "matmul" expect (O.matmul a b);
  (* The packed transposed variants must agree with the plain product of
     the same logical matrices. *)
  let at = O.transpose a and bt = O.transpose b in
  check_t "matmul T_a" expect (O.matmul ~transpose_a:true at b);
  check_t "matmul T_b" expect (O.matmul ~transpose_b:true a bt);
  check_t "matmul T_ab" expect
    (O.matmul ~transpose_a:true ~transpose_b:true at bt)

let test_conv2d_golden () =
  (* Naive direct convolution, SAME padding, stride 1. *)
  let batch = 2 and size = 8 and ic = 3 and oc = 5 in
  let img = rand_t 19 [| batch; size; size; ic |] in
  let filt = rand_t 20 [| 3; 3; ic; oc |] in
  let expect =
    Tensor.init_f [| batch; size; size; oc |] (fun idx ->
        let b = idx.(0) and y = idx.(1) and x = idx.(2) and o = idx.(3) in
        let acc = ref 0.0 in
        for ky = 0 to 2 do
          for kx = 0 to 2 do
            let sy = y + ky - 1 and sx = x + kx - 1 in
            if sy >= 0 && sy < size && sx >= 0 && sx < size then
              for c = 0 to ic - 1 do
                acc :=
                  !acc
                  +. Tensor.get_f img [| b; sy; sx; c |]
                     *. Tensor.get_f filt [| ky; kx; c; o |]
              done
          done
        done;
        !acc)
  in
  with_threads 4 @@ fun () ->
  check_t ~tol:1e-5 "conv2d SAME golden" expect
    (O.conv2d img filt ~strides:(1, 1) ~padding:O.Same)

let test_reduction_golden () =
  let m = rand_t 21 [| 40; 30 |] in
  let dm = Tensor.float_buffer m in
  let row_sums =
    Tensor.init_f [| 40 |] (fun idx ->
        let acc = ref 0.0 in
        for j = 0 to 29 do
          acc := !acc +. dm.((idx.(0) * 30) + j)
        done;
        !acc)
  in
  with_threads 4 @@ fun () ->
  check_t ~tol:1e-5 "row sums" row_sums (O.reduce_sum ~axes:[ 1 ] m);
  check_t ~tol:1e-5 "row means"
    (O.div row_sums (Tensor.scalar_f 30.0))
    (O.reduce_mean ~axes:[ 1 ] m)

(* ------------------------------------------------------------------ *)
(* Bugfix regressions: floor-mod and select                            *)
(* ------------------------------------------------------------------ *)

let test_modulo_floor_semantics () =
  let check a b expected =
    let r = O.modulo (Tensor.scalar_f a) (Tensor.scalar_f b) in
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "%g mod %g" a b)
      expected (Tensor.flat_get_f r 0)
  in
  (* TF FloorMod: result takes the divisor's sign. *)
  check 7.5 2.0 1.5;
  check (-7.5) 2.0 0.5;
  check 7.5 (-2.0) (-0.5);
  check (-7.5) (-2.0) (-1.5);
  (* Fractional divisor — the old int-truncating kernel divided by
     zero here (int_of_float 0.25 = 0). *)
  check 0.7 0.25 0.2;
  (* Large magnitudes that overflow naive int conversion paths. *)
  check 1e17 3.0 (Float.rem 1e17 3.0);
  (* Integer dtype keeps floor-mod semantics. *)
  let ri =
    O.modulo
      (Tensor.of_int_array [| 4 |] [| -7; 7; -7; 7 |])
      (Tensor.of_int_array [| 4 |] [| 3; -3; -3; 3 |])
  in
  Alcotest.(check (array int))
    "int floor-mod" [| 2; -2; -1; 1 |] (Tensor.to_int_array ri)

let test_select_broadcast () =
  (* Scalar condition broadcast over both branches. *)
  let a = Tensor.of_float_array [| 2; 2 |] [| 1.; 2.; 3.; 4. |] in
  let b = Tensor.of_float_array [| 2; 2 |] [| 9.; 8.; 7.; 6. |] in
  check_t "scalar cond true" a (O.select (Tensor.scalar_b true) a b);
  check_t "scalar cond false" b (O.select (Tensor.scalar_b false) a b);
  (* Row-broadcast condition. *)
  let cond = Tensor.of_bool_array [| 2 |] [| true; false |] in
  check_t "row cond"
    (Tensor.of_float_array [| 2; 2 |] [| 1.; 8.; 3.; 6. |])
    (O.select cond a b);
  (* Branch broadcasting: scalar branches against a full condition. *)
  let m = Tensor.of_bool_array [| 2; 2 |] [| true; false; false; true |] in
  check_t "scalar branches"
    (Tensor.of_float_array [| 2; 2 |] [| 1.; 0.; 0.; 1. |])
    (O.select m (Tensor.scalar_f 1.0) (Tensor.scalar_f 0.0));
  (* Integer payload keeps its dtype (the old kernel cast cond through
     the value dtype and materialized three temporaries). *)
  let ia = Tensor.of_int_array [| 2 |] [| 10; 20 |] in
  let ib = Tensor.of_int_array [| 2 |] [| 30; 40 |] in
  let r = O.select (Tensor.of_bool_array [| 2 |] [| false; true |]) ia ib in
  Alcotest.(check (array int)) "int select" [| 30; 20 |] (Tensor.to_int_array r);
  Alcotest.(check bool) "int dtype preserved" true
    (Tensor.dtype r = Tensor.dtype ia)

(* ------------------------------------------------------------------ *)
(* Observability: shard counters and per-node stats                    *)
(* ------------------------------------------------------------------ *)

let test_shard_metrics_and_step_stats () =
  with_threads 4 @@ fun () ->
  let before =
    Option.value ~default:0.0
      (Octf.Metrics.find_value Octf.Metrics.default
         "octf_intra_op_shards_total")
  in
  let module B = Octf.Builder in
  let b = B.create () in
  let x = B.const b (rand_t 22 [| 200; 64 |]) in
  let w = B.const b (rand_t 23 [| 64; 48 |]) in
  let y = B.reduce_sum b (B.matmul b x w) in
  let session = Octf.Session.create ~optimize:false (B.graph b) in
  let options = Octf.Session.Run_options.v ~collect_stats:true () in
  let _, md = Octf.Session.run_with_metadata ~options session [ y ] in
  let after =
    Option.value ~default:0.0
      (Octf.Metrics.find_value Octf.Metrics.default
         "octf_intra_op_shards_total")
  in
  Alcotest.(check bool) "shard counter advanced" true (after > before);
  let stats = Option.get md.Octf.Session.Run_metadata.step_stats in
  let mm =
    List.find
      (fun n -> n.Octf.Step_stats.op_type = "MatMul")
      stats.Octf.Step_stats.nodes
  in
  Alcotest.(check bool) "matmul node recorded shards" true
    (mm.Octf.Step_stats.shards > 0)

let suite =
  [
    Alcotest.test_case "parallel_for coverage" `Quick
      test_parallel_for_coverage;
    Alcotest.test_case "parallel_for exception" `Quick
      test_parallel_for_exception;
    Alcotest.test_case "parallel_for nested" `Quick test_parallel_for_nested;
    Alcotest.test_case "matmul bit-identical" `Quick test_matmul_determinism;
    Alcotest.test_case "conv2d bit-identical" `Quick test_conv2d_determinism;
    Alcotest.test_case "elementwise bit-identical" `Quick
      test_elementwise_determinism;
    Alcotest.test_case "reductions bit-identical" `Quick
      test_reduction_determinism;
    Alcotest.test_case "softmax bit-identical" `Quick
      test_softmax_determinism;
    Alcotest.test_case "matmul golden" `Quick test_matmul_golden;
    Alcotest.test_case "conv2d golden" `Quick test_conv2d_golden;
    Alcotest.test_case "reductions golden" `Quick test_reduction_golden;
    Alcotest.test_case "floor-mod semantics" `Quick
      test_modulo_floor_semantics;
    Alcotest.test_case "select broadcast" `Quick test_select_broadcast;
    Alcotest.test_case "shard metrics and step stats" `Quick
      test_shard_metrics_and_step_stats;
  ]
