(* Serving: graph freeze + dynamic micro-batching (ISSUE 8). *)

open Octf_tensor
open Octf
module B = Builder
module Vs = Octf_nn.Var_store
module Serving = Octf_serving.Serving

(* A small trained-ish MLP: x[n,4] -> relu(x W1 + b1) W2 -> y[n,3]. *)
let build_mlp () =
  let b = B.create () in
  let vs = Vs.create b in
  let x = B.placeholder b ~name:"x" Dtype.F32 in
  let w1 = Vs.get vs ~name:"w1" [| 4; 8 |] in
  let b1 = Vs.get vs ~name:"b1" [| 8 |] in
  let w2 = Vs.get vs ~name:"w2" [| 8; 3 |] in
  let h = B.relu b (B.add b (B.matmul b x w1.Vs.read) b1.Vs.read) in
  let y = B.matmul b h w2.Vs.read in
  (b, vs, x, y)

let batch_input n =
  Tensor.init_f [| n; 4 |] (fun idx ->
      float_of_int ((idx.(0) * 4) + idx.(1)) /. 7.0)

let test_freeze_bit_identical () =
  let b, vs, x, y = build_mlp () in
  let live = Session.create (B.graph b) in
  Session.run_unit live [ Vs.init_op vs ];
  let feed = batch_input 5 in
  let baseline =
    match Session.run ~feeds:[ (x, feed) ] live [ y ] with
    | [ v ] -> v
    | _ -> Alcotest.fail "arity"
  in
  (* The frozen graph must fetch bit-identical tensors whatever the
     execution strategy. *)
  List.iter
    (fun (scheduler, threads) ->
      let config =
        Session.Config.v ~scheduler ~intra_op_threads:threads ()
      in
      let frozen = Serving.freeze_session ~config ~inputs:[ x ] ~outputs:[ y ] live in
      match Session.run ~feeds:[ (x, feed) ] frozen [ y ] with
      | [ v ] ->
          Alcotest.(check bool)
            (Printf.sprintf "bit-identical (%s x %d)"
               (match scheduler with
               | Scheduler.Inline -> "inline"
               | Scheduler.Pool -> "pool")
               threads)
            true (Tensor.equal baseline v)
      | _ -> Alcotest.fail "arity")
    [
      (Scheduler.Inline, 1);
      (Scheduler.Inline, 4);
      (Scheduler.Pool, 1);
      (Scheduler.Pool, 4);
    ];
  (* restore the default thread budget for the rest of the suite *)
  Octf_tensor.Parallel.set_threads 1

let test_freeze_isolated_from_training () =
  let b, vs, x, y = build_mlp () in
  let live = Session.create (B.graph b) in
  Session.run_unit live [ Vs.init_op vs ];
  let feed = batch_input 3 in
  let run s = List.hd (Session.run ~feeds:[ (x, feed) ] s [ y ]) in
  let frozen = Serving.freeze_session ~inputs:[ x ] ~outputs:[ y ] live in
  let before = run frozen in
  (* Clobber a trained variable in the live session: the live output
     moves, the frozen one must not (its weights are constants), and
     the training graph itself still works (freeze worked on a copy). *)
  let w1 = List.find (fun (v : Vs.variable) -> v.Vs.name = "w1") (Vs.all vs) in
  let live_before = run live in
  Session.run_unit live
    [ B.assign b w1.Vs.handle (B.fill b [| 4; 8 |] 0.0) ];
  let live_after = run live in
  Alcotest.(check bool) "live session sees the update" false
    (Tensor.equal live_before live_after);
  Alcotest.(check bool) "frozen session does not" true
    (Tensor.equal before (run frozen))

let test_freeze_from_checkpoint () =
  let b, vs, x, y = build_mlp () in
  let live = Session.create (B.graph b) in
  Session.run_unit live [ Vs.init_op vs ];
  let feed = batch_input 4 in
  let baseline = List.hd (Session.run ~feeds:[ (x, feed) ] live [ y ]) in
  let dir = Filename.temp_file "octf_serving" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "model.ckpt" in
  let saver = Octf_train.Saver.create vs in
  Octf_train.Saver.save saver live ~path;
  let frozen =
    Serving.freeze_checkpoint ~path ~inputs:[ x ] ~outputs:[ y ] (B.graph b)
  in
  let v = List.hd (Session.run ~feeds:[ (x, feed) ] frozen [ y ]) in
  Alcotest.(check bool) "checkpoint freeze bit-identical" true
    (Tensor.equal baseline v);
  Sys.remove path;
  Unix.rmdir dir

let test_freeze_rejects_unresolved_variables () =
  let b, _vs, x, y = build_mlp () in
  match
    Serving.freeze ~values:(fun _ -> None) ~inputs:[ x ] ~outputs:[ y ]
      (B.graph b)
  with
  | _ -> Alcotest.fail "freeze with no values must fail"
  | exception Step_failure.Error { cause = Step_failure.Invalid_graph _; _ }
    ->
      ()

(* Identity-with-a-twist model for batching tests: y = 2x + 1, so each
   request's row is recognizably its own. *)
let doubler () =
  let b = B.create () in
  let x = B.placeholder b ~name:"x" Dtype.F32 in
  let y = B.add b (B.mul b x (B.const_f b 2.0)) (B.const_f b 1.0) in
  let session = Session.create (B.graph b) in
  (session, x, y)

let example v = Tensor.of_float_array [| 2 |] [| v; v +. 0.5 |]

let test_batch_coalescing () =
  let session, x, y = doubler () in
  let server =
    Serving.create ~name:"coalesce" ~max_batch_size:4 ~max_queue_delay:0.05
      ~session ~inputs:[ x ] ~outputs:[ y ] ()
  in
  let n_clients = 8 in
  let results = Array.make n_clients None in
  let clients =
    List.init n_clients (fun i ->
        Thread.create
          (fun () ->
            results.(i) <-
              Some (Serving.infer server [ example (float_of_int i) ]))
          ())
  in
  List.iter Thread.join clients;
  Array.iteri
    (fun i r ->
      match r with
      | Some (Ok [ row ]) ->
          Alcotest.(check (float 0.0))
            (Printf.sprintf "client %d got its own row" i)
            ((2.0 *. float_of_int i) +. 1.0)
            (Tensor.flat_get_f row 0);
          Alcotest.(check (array int)) "row shape, batch axis dropped"
            [| 2 |] (Tensor.shape row)
      | Some (Ok _) -> Alcotest.fail "arity"
      | Some (Error f) -> Alcotest.fail (Step_failure.to_string f)
      | None -> Alcotest.fail "client did not finish")
    results;
  let stats = Serving.stats server in
  Alcotest.(check int) "all served" n_clients stats.Serving.served;
  Alcotest.(check bool) "requests were coalesced" true
    (stats.Serving.batches < n_clients && stats.Serving.max_batch >= 2);
  Serving.shutdown server

(* A deliberately slow step: sixteen chained [n,1024]x[1024,1024]
   matmuls, tens of milliseconds on any machine. *)
let slow_model () =
  let b = B.create () in
  let x = B.placeholder b ~name:"x" Dtype.F32 in
  let w = B.fill b [| 1024; 1024 |] 0.001 in
  let rec chain acc = function
    | 0 -> acc
    | k -> chain (B.matmul b acc w) (k - 1)
  in
  let y = chain x 16 in
  let session = Session.create (B.graph b) in
  (session, x, y)

let slow_example v = Tensor.full Dtype.F32 [| 1024 |] v

let test_mid_batch_deadline_expiry () =
  let session, x, y = slow_model () in
  let server =
    Serving.create ~name:"deadline" ~max_batch_size:8 ~max_queue_delay:0.01
      ~session ~inputs:[ x ] ~outputs:[ y ] ()
  in
  (* Both requests land in one batch (submits are back-to-back, window
     10ms). The impatient one has far more than the window but far
     less than the step, so it expires while its rows compute; the
     patient one makes the step unbounded and is answered. *)
  let impatient = Serving.submit ~deadline:0.02 server [ slow_example 1.0 ] in
  let patient = Serving.submit server [ slow_example 2.0 ] in
  (match impatient with
  | Ok r -> (
      match Serving.await r with
      | Error { Step_failure.cause = Step_failure.Deadline_exceeded _; _ } ->
          ()
      | Ok _ -> Alcotest.fail "impatient request should have expired"
      | Error f -> Alcotest.fail (Step_failure.to_string f))
  | Error f -> Alcotest.fail (Step_failure.to_string f));
  (match patient with
  | Ok r -> (
      match Serving.await r with
      | Ok [ row ] ->
          Alcotest.(check (array int)) "row shape" [| 1024 |]
            (Tensor.shape row)
      | Ok _ -> Alcotest.fail "arity"
      | Error f -> Alcotest.fail (Step_failure.to_string f))
  | Error f -> Alcotest.fail (Step_failure.to_string f));
  let stats = Serving.stats server in
  Alcotest.(check int) "one batch carried both" 1 stats.Serving.batches;
  Alcotest.(check int) "one member expired" 1 stats.Serving.failed;
  Serving.shutdown server

let test_overload_rejection () =
  let session, x, y = slow_model () in
  let server =
    Serving.create ~name:"overload" ~max_batch_size:1 ~max_queue_delay:0.0
      ~queue_capacity:2 ~session ~inputs:[ x ] ~outputs:[ y ] ()
  in
  let submitted =
    List.init 10 (fun i -> Serving.submit server [ slow_example (float_of_int i) ])
  in
  let overloaded =
    List.filter
      (function
        | Error { Step_failure.cause = Step_failure.Overloaded _; _ } -> true
        | _ -> false)
      submitted
  in
  Alcotest.(check bool)
    (Printf.sprintf "some requests shed (%d)" (List.length overloaded))
    true
    (List.length overloaded >= 5);
  (* admitted requests are all eventually answered *)
  List.iter
    (function
      | Ok r -> (
          match Serving.await r with
          | Ok _ -> ()
          | Error f -> Alcotest.fail (Step_failure.to_string f))
      | Error _ -> ())
    submitted;
  let stats = Serving.stats server in
  Alcotest.(check int) "accounting adds up" 10
    (stats.Serving.served + stats.Serving.rejected);
  Alcotest.(check bool) "rejections metered" true
    (match
       Metrics.find_value
         ~labels:[ ("reason", "overloaded"); ("server", "overload") ]
         Metrics.default "octf_serving_rejected_total"
     with
    | Some v -> v >= 5.0
    | None -> false);
  Serving.shutdown server

let test_shutdown_fails_backlog () =
  let session, x, y = slow_model () in
  let server =
    Serving.create ~name:"shutdown" ~max_batch_size:1 ~max_queue_delay:0.0
      ~queue_capacity:8 ~session ~inputs:[ x ] ~outputs:[ y ] ()
  in
  let rs = List.init 4 (fun i -> Serving.submit server [ slow_example (float_of_int i) ]) in
  Serving.shutdown server;
  (* every admitted request resolves: served, cancelled, or expired —
     none hangs *)
  List.iter
    (function
      | Ok r -> (
          match Serving.await r with Ok _ | Error _ -> ())
      | Error _ -> ())
    rs;
  match Serving.submit server [ slow_example 9.0 ] with
  | Error { Step_failure.cause = Step_failure.Cancelled _; _ } -> ()
  | Ok _ -> Alcotest.fail "submit after shutdown must be rejected"
  | Error f -> Alcotest.fail (Step_failure.to_string f)

let test_signature_rejection () =
  let session, x, y = doubler () in
  let server =
    Serving.create ~name:"sig" ~max_batch_size:4 ~max_queue_delay:0.001
      ~session ~inputs:[ x ] ~outputs:[ y ] ()
  in
  (match Serving.infer server [ example 1.0 ] with
  | Ok _ -> ()
  | Error f -> Alcotest.fail (Step_failure.to_string f));
  (* later requests must match the signature fixed by the first *)
  (match Serving.submit server [ Tensor.of_float_array [| 3 |] [| 1.; 2.; 3. |] ] with
  | Error { Step_failure.cause = Step_failure.Invalid_graph _; _ } -> ()
  | Ok _ -> Alcotest.fail "mismatched shape must be rejected"
  | Error f -> Alcotest.fail (Step_failure.to_string f));
  (match Serving.submit server [] with
  | Error { Step_failure.cause = Step_failure.Invalid_graph _; _ } -> ()
  | Ok _ -> Alcotest.fail "wrong arity must be rejected"
  | Error f -> Alcotest.fail (Step_failure.to_string f));
  Serving.shutdown server

let suite =
  [
    Alcotest.test_case "freeze is bit-identical across schedulers" `Quick
      test_freeze_bit_identical;
    Alcotest.test_case "freeze is isolated from training" `Quick
      test_freeze_isolated_from_training;
    Alcotest.test_case "freeze from checkpoint" `Quick
      test_freeze_from_checkpoint;
    Alcotest.test_case "freeze rejects unresolved variables" `Quick
      test_freeze_rejects_unresolved_variables;
    Alcotest.test_case "batch coalescing under concurrent clients" `Quick
      test_batch_coalescing;
    Alcotest.test_case "mid-batch deadline expiry" `Quick
      test_mid_batch_deadline_expiry;
    Alcotest.test_case "overload rejection at high-watermark" `Quick
      test_overload_rejection;
    Alcotest.test_case "shutdown fails the backlog" `Quick
      test_shutdown_fails_backlog;
    Alcotest.test_case "served signature is enforced" `Quick
      test_signature_rejection;
  ]
