let () =
  Alcotest.run "octf"
    [
      ("smoke", Test_smoke.suite);
      ("shape", Test_shape.suite);
      ("tensor", Test_tensor.suite);
      ("rng", Test_rng.suite);
      ("tensor_ops", Test_tensor_ops.suite);
      ("graph", Test_graph.suite);
      ("device", Test_device.suite);
      ("queue", Test_queue.suite);
      ("resource", Test_resource.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("placement", Test_placement.suite);
      ("partition", Test_partition.suite);
      ("executor", Test_executor.suite);
      ("scheduler", Test_scheduler.suite);
      ("gradients", Test_gradients.suite);
      ("session", Test_session.suite);
      ("optimizer", Test_optimizer.suite);
      ("saver", Test_saver.suite);
      ("sync_replicas", Test_sync.suite);
      ("nn", Test_nn.suite);
      ("data", Test_data.suite);
      ("models", Test_models.suite);
      ("sim", Test_sim.suite);
      ("graph_optimizer", Test_optimizer_passes.suite);
      ("cluster", Test_cluster.suite);
      ("tracer", Test_tracer.suite);
      ("quantization", Test_quant.suite);
      ("records", Test_records.suite);
      ("schedule", Test_schedule.suite);
      ("shape_inference", Test_shape_inference.suite);
      ("tensor_array", Test_tensor_array.suite);
      ("kernels_misc", Test_kernels_misc.suite);
      ("nn_extra", Test_nn_extra.suite);
      ("faults", Test_faults.suite);
    ]
