(* Scheduler policies: the domain-pool executor must be observationally
   identical to the inline loop (bit-identical fetches), and shared
   state must survive concurrent steps without tearing. *)

open Octf_tensor
open Octf
module B = Builder

(* Run the same builder function through a fresh session per policy and
   check every fetched tensor is bit-identical. [steps] > 1 exercises
   per-step RNG derivation (step_id advances identically in both
   sessions). *)
let check_identical ?(steps = 1) ?cluster ~name build =
  let run policy =
    let b = B.create () in
    let fetches, inits = build b in
    let session =
      match cluster with
      | None -> Session.create ~seed:42 ~optimize:false ~scheduler:policy (B.graph b)
      | Some mk ->
          Cluster.session ~seed:42 ~optimize:false ~scheduler:policy (mk ())
            (B.graph b)
    in
    if inits <> [] then Session.run_unit session inits;
    let out = ref [] in
    for _ = 1 to steps do
      out := Session.run session fetches
    done;
    !out
  in
  let inline = run Scheduler.Inline and pool = run Scheduler.Pool in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check (array (float 0.)))
        (Printf.sprintf "%s fetch %d" name i)
        (Tensor.to_float_array a) (Tensor.to_float_array b))
    (List.combine inline pool)

let test_identical_simple () =
  (* Control-flow-free graph (splan fast path) mixing random ops,
     matmuls and a reduction: a wide graph the pool actually fans out. *)
  check_identical ~name:"simple" ~steps:3 (fun b ->
      let branches =
        List.init 8 (fun _ ->
            let x = B.random_normal b [| 6; 6 |] in
            let y = B.random_uniform b ~lo:(-1.0) ~hi:1.0 [| 6; 6 |] in
            B.reduce_sum b (B.matmul b x y))
      in
      ([ B.add_n b branches ], []))

let test_identical_general () =
  (* A while loop forces the general executor (frames, iterations). *)
  check_identical ~name:"while" ~steps:2 (fun b ->
      let init = [ B.const_f b 0.0; B.const_f b 0.0 ] in
      let limit = B.const_f b 10.0 and one = B.const_f b 1.0 in
      let outs =
        B.while_loop b ~invariants:[ limit; one ]
          ~cond:(fun b vars ->
            match vars with
            | [ i; _acc; lim; _one ] -> B.less b i lim
            | _ -> assert false)
          ~body:(fun b vars ->
            match vars with
            | [ i; acc; _lim; one ] -> [ B.add b i one; B.add b acc i ]
            | _ -> assert false)
          init
      in
      (outs, []))

let test_identical_cluster () =
  (* Cross-device Send/Recv: blocking Recv kernels must keep the
     coordinator's progress guarantee under both policies. *)
  let mk () =
    Cluster.create ~jobs:[ ("ps", 1, [ Device.CPU ]); ("worker", 1, [ Device.CPU ]) ]
  in
  check_identical ~name:"cluster" ~steps:2 ~cluster:mk (fun b ->
      let w =
        B.variable b ~name:"w" ~device:"/job:ps/task:0" ~dtype:Dtype.F32
          ~shape:[| 4 |] ()
      in
      let init = B.assign b w (B.fill b [| 4 |] 2.0) in
      let r = B.read b w in
      let y =
        B.with_device b "/job:worker/task:0" (fun () ->
            B.mul b (B.random_normal b [| 4 |]) r)
      in
      ([ B.reduce_sum b y ], [ init ]))

(* Concurrent Session.run steps racing on one variable: an Assign of
   [k; k] must never be observed torn (components unequal), under the
   pool scheduler where the assign kernel runs on a worker domain. *)
let test_concurrent_no_tearing () =
  let b = B.create () in
  let v = B.variable b ~name:"v" ~dtype:Dtype.F32 ~shape:[| 2 |] () in
  let k = B.placeholder b ~shape:[||] Dtype.F32 in
  let write = B.assign b v (B.pack b [ k; k ]) in
  let read = B.read b v in
  let session = Session.create ~scheduler:Scheduler.Pool (B.graph b) in
  Session.run_unit ~feeds:[ (k, Tensor.scalar_f 0.0) ] session [ write ];
  let torn = Atomic.make false in
  let writer =
    Thread.create
      (fun () ->
        for i = 1 to 200 do
          Session.run_unit
            ~feeds:[ (k, Tensor.scalar_f (float_of_int i)) ]
            session [ write ]
        done)
      ()
  in
  let readers =
    List.init 2 (fun _ ->
        Thread.create
          (fun () ->
            for _ = 1 to 200 do
              match Session.run session [ read ] with
              | [ t ] ->
                  if Tensor.flat_get_f t 0 <> Tensor.flat_get_f t 1 then
                    Atomic.set torn true
              | _ -> assert false
            done)
          ())
  in
  Thread.join writer;
  List.iter Thread.join readers;
  Alcotest.(check bool) "no torn reads" false (Atomic.get torn)

(* T threads x S steps of AssignAdd 1.0 must sum exactly: updates are
   serialized by the variable's lock even when kernels run on worker
   domains. *)
let test_concurrent_assign_add () =
  let b = B.create () in
  let v = B.variable b ~name:"total" ~dtype:Dtype.F32 ~shape:[||] () in
  let init = B.assign b v (B.const_f b 0.0) in
  let bump = B.assign_add b v (B.const_f b 1.0) in
  let session = Session.create ~scheduler:Scheduler.Pool (B.graph b) in
  Session.run_unit session [ init ];
  let threads = 4 and steps = 100 in
  let workers =
    List.init threads (fun _ ->
        Thread.create
          (fun () ->
            for _ = 1 to steps do
              Session.run_unit session [ bump ]
            done)
          ())
  in
  List.iter Thread.join workers;
  match Session.run session [ B.read b v ] with
  | [ t ] ->
      Alcotest.(check (float 0.))
        "total" (float_of_int (threads * steps)) (Tensor.flat_get_f t 0)
  | _ -> assert false

let test_policy_parsing () =
  List.iter
    (fun (s, expect) ->
      match Scheduler.policy_of_string s with
      | Ok p ->
          Alcotest.(check string) s
            (Scheduler.policy_to_string expect)
            (Scheduler.policy_to_string p)
      | Error e -> Alcotest.fail e)
    [
      ("inline", Scheduler.Inline);
      ("serial", Scheduler.Inline);
      ("pool", Scheduler.Pool);
      ("parallel", Scheduler.Pool);
    ];
  match Scheduler.policy_of_string "bogus" with
  | Ok _ -> Alcotest.fail "accepted bogus policy"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "identical: simple path" `Quick test_identical_simple;
    Alcotest.test_case "identical: while loop" `Quick test_identical_general;
    Alcotest.test_case "identical: cluster send/recv" `Quick
      test_identical_cluster;
    Alcotest.test_case "concurrent runs: no torn assign" `Quick
      test_concurrent_no_tearing;
    Alcotest.test_case "concurrent runs: assign_add total" `Quick
      test_concurrent_assign_add;
    Alcotest.test_case "policy parsing" `Quick test_policy_parsing;
  ]
