open Octf_tensor
open Octf
module B = Builder
module Syn = Octf_data.Synthetic
module Pipe = Octf_data.Pipeline

let test_image_batch_shapes () =
  let rng = Rng.create 1 in
  let imgs = Syn.image_batch rng ~batch:4 ~size:8 ~channels:1 ~classes:4 in
  Alcotest.(check (array int)) "pixels" [| 4; 8; 8; 1 |]
    (Tensor.shape imgs.Syn.pixels);
  Alcotest.(check (array int)) "labels" [| 4 |] (Tensor.shape imgs.Syn.labels);
  Array.iter
    (fun l -> if l < 0 || l >= 4 then Alcotest.fail "label range")
    (Tensor.to_int_array imgs.Syn.labels)

let test_image_batch_learnable_signal () =
  (* The class-k square must be brighter inside than outside. *)
  let rng = Rng.create 2 in
  let imgs = Syn.image_batch rng ~batch:1 ~size:8 ~channels:1 ~classes:4 in
  let k = Tensor.flat_get_i imgs.Syn.labels 0 in
  let cell = 8 / 2 in
  let gy = k / 2 * cell and gx = k mod 2 * cell in
  let inside = Tensor.get_f imgs.Syn.pixels [| 0; gy + 1; gx + 1; 0 |] in
  let oy = (gy + cell) mod 8 and ox = (gx + cell) mod 8 in
  let outside = Tensor.get_f imgs.Syn.pixels [| 0; oy; ox; 0 |] in
  Alcotest.(check bool) "bright square" true (inside > outside +. 0.3)

let test_regression_batch () =
  let rng = Rng.create 3 in
  let x, y = Syn.regression_batch rng ~batch:8 ~dim:2 ~w:[| 2.0; -1.0 |] ~bias:0.5 ~noise:0.0 in
  for i = 0 to 7 do
    let expected =
      (2.0 *. Tensor.get_f x [| i; 0 |])
      -. Tensor.get_f x [| i; 1 |]
      +. 0.5
    in
    Alcotest.(check (float 1e-6)) "linear" expected (Tensor.get_f y [| i; 0 |])
  done

let test_xor_batch () =
  let rng = Rng.create 4 in
  let x, y = Syn.xor_batch rng ~batch:32 in
  Alcotest.(check (array int)) "x shape" [| 32; 2 |] (Tensor.shape x);
  for i = 0 to 31 do
    let a = Tensor.get_f x [| i; 0 |] > 0.5 in
    let b = Tensor.get_f x [| i; 1 |] > 0.5 in
    let label = if Tensor.get_f y [| i; 1 |] > 0.5 then 1 else 0 in
    Alcotest.(check int) "xor label" (if a <> b then 1 else 0) label
  done

let test_lm_batch_shift () =
  let stream = Array.init 100 (fun i -> i) in
  let rng = Rng.create 5 in
  let inputs, targets = Syn.lm_batch rng ~stream ~batch:2 ~unroll:5 ~position:0 in
  for i = 0 to 1 do
    for t = 0 to 4 do
      Alcotest.(check int) "target = next input"
        (Tensor.get_i inputs [| i; t |] + 1)
        (Tensor.get_i targets [| i; t |])
    done
  done

let test_token_stream_range () =
  let rng = Rng.create 6 in
  let s = Syn.token_stream rng ~vocab:100 ~length:1000 ~zipf_s:1.1 in
  Array.iter (fun v -> if v < 0 || v >= 100 then Alcotest.fail "range") s

let test_pipeline_fill_and_drain () =
  let b = B.create () in
  let producer = B.placeholder b Dtype.F32 in
  let pipe = Pipe.create b ~capacity:8 ~name:"p" ~producers:[ producer ] () in
  let batch = List.hd (Pipe.batch pipe) in
  let session = Session.create (B.graph b) in
  let counter = ref 0.0 in
  let counter_mutex = Mutex.create () in
  let feed _ =
    Mutex.lock counter_mutex;
    counter := !counter +. 1.0;
    let v = !counter in
    Mutex.unlock counter_mutex;
    [ (producer, Tensor.scalar_f v) ]
  in
  let fillers = Pipe.start_fillers pipe session ~threads:2 ~steps:5 ~feed () in
  let total = ref 0.0 in
  for _ = 1 to 10 do
    total := !total +. Tensor.flat_get_f (List.hd (Session.run session [ batch ])) 0
  done;
  Pipe.join_fillers fillers;
  (* Values 1..10 all arrive exactly once. *)
  Alcotest.(check (float 0.)) "sum of 1..10" 55.0 !total

let test_pipeline_close_stops_fillers () =
  let b = B.create () in
  let producer = B.placeholder b Dtype.F32 in
  let pipe = Pipe.create b ~capacity:2 ~name:"p" ~producers:[ producer ] () in
  let session = Session.create (B.graph b) in
  let feed _ = [ (producer, Tensor.scalar_f 1.0) ] in
  (* Unbounded fillers: must stop once the queue closes. *)
  let fillers = Pipe.start_fillers pipe session ~threads:2 ~feed () in
  Thread.delay 0.05;
  Pipe.close pipe session;
  Pipe.join_fillers fillers;
  ()

let test_pipeline_prefetch_fill_and_drain () =
  (* Same fill/drain as above but through a prefetch stage: every value
     must still arrive exactly once (stage -> pump -> main queue), and
     after the bounded fillers finish, end-of-input propagates through
     the stage so a further dequeue fails instead of hanging. *)
  let b = B.create () in
  let producer = B.placeholder b Dtype.F32 in
  let pipe =
    Pipe.create b ~capacity:4 ~prefetch:2 ~name:"p" ~producers:[ producer ] ()
  in
  let batch = List.hd (Pipe.batch pipe) in
  let session = Session.create (B.graph b) in
  let counter = ref 0.0 in
  let counter_mutex = Mutex.create () in
  let feed _ =
    Mutex.lock counter_mutex;
    counter := !counter +. 1.0;
    let v = !counter in
    Mutex.unlock counter_mutex;
    [ (producer, Tensor.scalar_f v) ]
  in
  let fillers = Pipe.start_fillers pipe session ~threads:2 ~steps:5 ~feed () in
  let total = ref 0.0 in
  for _ = 1 to 10 do
    total :=
      !total +. Tensor.flat_get_f (List.hd (Session.run session [ batch ])) 0
  done;
  Pipe.join_fillers fillers;
  Alcotest.(check (float 0.)) "sum of 1..10" 55.0 !total;
  match Session.run session [ batch ] with
  | _ -> Alcotest.fail "dequeue past end-of-input should fail"
  | exception Session.Run_error _ -> ()

let test_pipeline_stop_fillers_cancels () =
  (* Unbounded fillers parked in a full queue's enqueue wait must be
     woken and reclaimed by stop_fillers (group cancellation), without
     closing the queue first. *)
  let b = B.create () in
  let producer = B.placeholder b Dtype.F32 in
  let pipe = Pipe.create b ~capacity:2 ~name:"p" ~producers:[ producer ] () in
  let session = Session.create (B.graph b) in
  let feed _ = [ (producer, Tensor.scalar_f 1.0) ] in
  let fillers = Pipe.start_fillers pipe session ~threads:2 ~feed () in
  Thread.delay 0.05;
  Pipe.stop_fillers fillers

let test_pipeline_batch_many () =
  let b = B.create () in
  let producer = B.placeholder b Dtype.F32 in
  let pipe = Pipe.create b ~capacity:8 ~name:"p" ~producers:[ producer ] () in
  let stacked = List.hd (Pipe.batch_many pipe ~n:3) in
  let session = Session.create (B.graph b) in
  for i = 1 to 3 do
    Session.run_unit
      ~feeds:[ (producer, Tensor.scalar_f (float_of_int i)) ]
      session
      [ Pipe.enqueue_op pipe ]
  done;
  let v = List.hd (Session.run session [ stacked ]) in
  Alcotest.(check (array int)) "stacked shape" [| 3 |] (Tensor.shape v);
  Alcotest.(check (float 0.)) "order" 2.0 (Tensor.get_f v [| 1 |])

let suite =
  [
    Alcotest.test_case "image batch shapes" `Quick test_image_batch_shapes;
    Alcotest.test_case "image learnable signal" `Quick
      test_image_batch_learnable_signal;
    Alcotest.test_case "regression batch" `Quick test_regression_batch;
    Alcotest.test_case "xor batch" `Quick test_xor_batch;
    Alcotest.test_case "lm batch shift" `Quick test_lm_batch_shift;
    Alcotest.test_case "token stream range" `Quick test_token_stream_range;
    Alcotest.test_case "pipeline fill/drain" `Quick test_pipeline_fill_and_drain;
    Alcotest.test_case "pipeline close" `Quick test_pipeline_close_stops_fillers;
    Alcotest.test_case "pipeline prefetch fill/drain" `Quick
      test_pipeline_prefetch_fill_and_drain;
    Alcotest.test_case "pipeline stop_fillers cancels" `Quick
      test_pipeline_stop_fillers_cancels;
    Alcotest.test_case "pipeline batch_many" `Quick test_pipeline_batch_many;
  ]
