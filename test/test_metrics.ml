open Octf_tensor
open Octf
module B = Builder

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Registry basics                                                     *)
(* ------------------------------------------------------------------ *)

let test_counter_basics () =
  let r = Metrics.create () in
  let c = Metrics.Counter.v ~registry:r ~help:"test counter" "requests_total" in
  Metrics.Counter.incr c;
  Metrics.Counter.add c 4;
  Metrics.Counter.add_f c 0.5;
  Alcotest.(check (float 1e-9)) "accumulates" 5.5 (Metrics.Counter.value c);
  Metrics.Counter.add c (-3);
  Metrics.Counter.add_f c (-1.0);
  Alcotest.(check (float 1e-9)) "monotone: negative adds ignored" 5.5
    (Metrics.Counter.value c);
  (* Same name and labels resolve to the same series. *)
  let c' = Metrics.Counter.v ~registry:r "requests_total" in
  Metrics.Counter.incr c';
  Alcotest.(check (float 1e-9)) "same series" 6.5 (Metrics.Counter.value c)

let test_gauge_basics () =
  let r = Metrics.create () in
  let g = Metrics.Gauge.v ~registry:r "depth" in
  Metrics.Gauge.set g 3.0;
  Metrics.Gauge.incr g;
  Metrics.Gauge.decr g;
  Metrics.Gauge.add g (-2.0);
  Alcotest.(check (float 1e-9)) "set/add" 1.0 (Metrics.Gauge.value g);
  Metrics.Gauge.max_to g 10.0;
  Metrics.Gauge.max_to g 4.0;
  Alcotest.(check (float 1e-9)) "max_to keeps high-watermark" 10.0
    (Metrics.Gauge.value g)

let test_histogram_buckets () =
  let r = Metrics.create () in
  let h =
    Metrics.Histogram.v ~registry:r ~buckets:[| 1.0; 2.0; 5.0 |] "lat_seconds"
  in
  List.iter (Metrics.Histogram.observe h) [ 0.5; 1.5; 3.0; 10.0 ];
  Alcotest.(check int) "count" 4 (Metrics.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 15.0 (Metrics.Histogram.sum h);
  match Metrics.snapshot r with
  | [ s ] ->
      Alcotest.(check (list (pair (float 1e-9) int)))
        "cumulative buckets"
        [ (1.0, 1); (2.0, 2); (5.0, 3) ]
        s.Metrics.buckets
  | l -> Alcotest.failf "expected one sample, got %d" (List.length l)

let test_histogram_time_on_exception () =
  let r = Metrics.create () in
  let h = Metrics.Histogram.v ~registry:r "work_seconds" in
  (try Metrics.Histogram.time h (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "observed despite exception" 1
    (Metrics.Histogram.count h)

let test_labels_distinct_series () =
  let r = Metrics.create () in
  let a = Metrics.Counter.v ~registry:r ~labels:[ ("op", "Add") ] "ops_total" in
  let b = Metrics.Counter.v ~registry:r ~labels:[ ("op", "Mul") ] "ops_total" in
  Metrics.Counter.add a 2;
  Metrics.Counter.incr b;
  Alcotest.(check (option (float 1e-9)))
    "labeled lookup Add" (Some 2.0)
    (Metrics.find_value ~labels:[ ("op", "Add") ] r "ops_total");
  Alcotest.(check (option (float 1e-9)))
    "labeled lookup Mul" (Some 1.0)
    (Metrics.find_value ~labels:[ ("op", "Mul") ] r "ops_total");
  (* Label order is irrelevant: sorted into one canonical key. *)
  let c1 =
    Metrics.Counter.v ~registry:r
      ~labels:[ ("x", "1"); ("y", "2") ]
      "pairs_total"
  in
  let c2 =
    Metrics.Counter.v ~registry:r
      ~labels:[ ("y", "2"); ("x", "1") ]
      "pairs_total"
  in
  Metrics.Counter.incr c1;
  Metrics.Counter.incr c2;
  Alcotest.(check (option (float 1e-9)))
    "order-insensitive" (Some 2.0)
    (Metrics.find_value ~labels:[ ("x", "1"); ("y", "2") ] r "pairs_total")

let test_kind_conflict_rejected () =
  let r = Metrics.create () in
  ignore (Metrics.Counter.v ~registry:r "thing");
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument
       "Metrics: thing already registered as a counter (requested gauge)")
    (fun () -> ignore (Metrics.Gauge.v ~registry:r "thing"))

let test_reset () =
  let r = Metrics.create () in
  let c = Metrics.Counter.v ~registry:r "n_total" in
  Metrics.Counter.add c 7;
  Metrics.reset r;
  Alcotest.(check (float 1e-9)) "zeroed" 0.0 (Metrics.Counter.value c);
  Metrics.Counter.incr c;
  Alcotest.(check (float 1e-9)) "still usable" 1.0 (Metrics.Counter.value c)

(* ------------------------------------------------------------------ *)
(* Concurrency: many domains hammering the same and distinct series    *)
(* ------------------------------------------------------------------ *)

let test_concurrent_domains () =
  let r = Metrics.create () in
  let shared = Metrics.Counter.v ~registry:r "shared_total" in
  let h = Metrics.Histogram.v ~registry:r ~buckets:[| 0.5 |] "obs_seconds" in
  let domains = 4 and per_domain = 10_000 in
  let worker d () =
    (* Each domain also creates its own labeled series through [v],
       racing on family registration. *)
    let own =
      Metrics.Counter.v ~registry:r
        ~labels:[ ("domain", string_of_int d) ]
        "per_domain_total"
    in
    for _ = 1 to per_domain do
      Metrics.Counter.incr shared;
      Metrics.Counter.incr own;
      Metrics.Histogram.observe h 0.1
    done
  in
  let spawned = List.init domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join spawned;
  Alcotest.(check (float 1e-9))
    "no lost shared increments"
    (float_of_int (domains * per_domain))
    (Metrics.Counter.value shared);
  Alcotest.(check int) "no lost observations" (domains * per_domain)
    (Metrics.Histogram.count h);
  for d = 0 to domains - 1 do
    Alcotest.(check (option (float 1e-9)))
      "per-domain series intact"
      (Some (float_of_int per_domain))
      (Metrics.find_value
         ~labels:[ ("domain", string_of_int d) ]
         r "per_domain_total")
  done

let test_pool_scheduler_instrumentation () =
  (* Built-in executor instrumentation must stay consistent when steps
     run on the shared domain pool. *)
  let kernels_before =
    Option.value ~default:0.0
      (Metrics.find_value Metrics.default "octf_executor_kernels_total")
  in
  let steps_before =
    Option.value ~default:0.0
      (Metrics.find_value Metrics.default "octf_session_steps_total")
  in
  let b = B.create () in
  let x = B.const_f b 2.0 in
  let y = B.add_n b (List.init 8 (fun _ -> B.mul b x x)) in
  let s = Session.create ~optimize:false ~scheduler:Scheduler.Pool (B.graph b) in
  let iters = 20 in
  for _ = 1 to iters do
    ignore (Session.run s [ y ])
  done;
  let kernels_after =
    Option.get (Metrics.find_value Metrics.default "octf_executor_kernels_total")
  in
  let steps_after =
    Option.get (Metrics.find_value Metrics.default "octf_session_steps_total")
  in
  Alcotest.(check (float 1e-9))
    "one step counted per run" (float_of_int iters)
    (steps_after -. steps_before);
  (* 10 kernels per step: 1 const + 8 muls + 1 add_n. *)
  Alcotest.(check (float 1e-9))
    "kernel dispatches counted across domains"
    (float_of_int (iters * 10))
    (kernels_after -. kernels_before)

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let test_prometheus_format () =
  let r = Metrics.create () in
  let c =
    Metrics.Counter.v ~registry:r ~help:"Total requests"
      ~labels:[ ("path", "a\\b\"c\nd") ]
      "http_requests_total"
  in
  Metrics.Counter.add c 3;
  let g = Metrics.Gauge.v ~registry:r ~help:"In flight" "in_flight" in
  Metrics.Gauge.set g 2.0;
  let h = Metrics.Histogram.v ~registry:r ~buckets:[| 0.1; 1.0 |] "t_seconds" in
  Metrics.Histogram.observe h 0.05;
  Metrics.Histogram.observe h 5.0;
  let text = Metrics.to_prometheus r in
  Alcotest.(check bool) "HELP line" true
    (contains text "# HELP http_requests_total Total requests");
  Alcotest.(check bool) "TYPE counter" true
    (contains text "# TYPE http_requests_total counter");
  Alcotest.(check bool) "label value escaped" true
    (contains text "http_requests_total{path=\"a\\\\b\\\"c\\nd\"} 3");
  Alcotest.(check bool) "gauge sample" true (contains text "in_flight 2");
  Alcotest.(check bool) "TYPE histogram" true
    (contains text "# TYPE t_seconds histogram");
  Alcotest.(check bool) "cumulative first bucket" true
    (contains text "t_seconds_bucket{le=\"0.1\"} 1");
  Alcotest.(check bool) "overflow only in +Inf" true
    (contains text "t_seconds_bucket{le=\"+Inf\"} 2");
  Alcotest.(check bool) "sum" true (contains text "t_seconds_sum 5.05");
  Alcotest.(check bool) "count" true (contains text "t_seconds_count 2")

let test_json_round_trip () =
  let r = Metrics.create () in
  let c =
    Metrics.Counter.v ~registry:r
      ~labels:[ ("name", "quo\"te\\slash") ]
      "events_total"
  in
  Metrics.Counter.add c 11;
  let h = Metrics.Histogram.v ~registry:r ~buckets:[| 1.0 |] "d_seconds" in
  Metrics.Histogram.observe h 0.25;
  let json = Json_check.parse (Metrics.to_json r) in
  let metrics =
    Option.get (Json_check.to_list (Option.get (Json_check.member "metrics" json)))
  in
  Alcotest.(check int) "two series" 2 (List.length metrics);
  let by_name n =
    List.find
      (fun m -> Json_check.member "name" m = Some (Json_check.Str n))
      metrics
  in
  let counter = by_name "events_total" in
  Alcotest.(check (option (float 1e-9)))
    "counter value" (Some 11.0)
    (Option.bind (Json_check.member "value" counter) Json_check.to_float);
  let labels = Option.get (Json_check.member "labels" counter) in
  Alcotest.(check (option string))
    "label escapes round-trip" (Some "quo\"te\\slash")
    (Option.bind (Json_check.member "name" labels) Json_check.to_string);
  let histo = by_name "d_seconds" in
  Alcotest.(check (option (float 1e-9)))
    "histogram sum" (Some 0.25)
    (Option.bind (Json_check.member "sum" histo) Json_check.to_float)

(* ------------------------------------------------------------------ *)
(* Run_options / Run_metadata                                          *)
(* ------------------------------------------------------------------ *)

let test_run_metadata_step_stats () =
  (* Distributed graph, so step stats include Send/Recv and non-zero
     tensor byte counts. *)
  let c =
    Cluster.create
      ~jobs:[ ("ps", 1, [ Device.CPU ]); ("worker", 1, [ Device.CPU ]) ]
  in
  let b = B.create () in
  let v =
    B.variable b ~name:"w" ~device:"/job:ps/task:0" ~dtype:Dtype.F32
      ~shape:[||] ()
  in
  let init = B.assign b v (B.const_f b 1.5) in
  let r = B.read b v in
  let y =
    B.with_device b "/job:worker/task:0" (fun () ->
        B.mul b r (B.const_f b 2.0))
  in
  let s = Cluster.session c (B.graph b) in
  Session.run_unit s [ init ];
  let options = Session.Run_options.v ~collect_stats:true () in
  let results, md = Session.run_with_metadata ~options s [ y ] in
  Alcotest.(check (float 0.)) "result" 3.0
    (Tensor.flat_get_f (List.hd results) 0);
  let stats = Option.get md.Session.Run_metadata.step_stats in
  let tracer = Option.get md.Session.Run_metadata.tracer in
  Alcotest.(check int) "step ids agree" md.Session.Run_metadata.step_id
    stats.Step_stats.step_id;
  Alcotest.(check (float 1e-9))
    "step-stats kernel time equals tracer total"
    (Tracer.total_time tracer)
    (Step_stats.total_time stats);
  Alcotest.(check bool) "recv moved bytes" true
    (Step_stats.total_bytes stats > 0);
  Alcotest.(check bool) "wall time covers kernels" true
    (md.Session.Run_metadata.wall_time >= 0.0);
  let ops = List.map (fun (op, _, _) -> op) (Step_stats.by_op_type stats) in
  Alcotest.(check bool) "send/recv in stats" true
    (List.mem "Send" ops && List.mem "Recv" ops)

let test_run_options_targets_and_wrappers () =
  let b = B.create () in
  let v = B.variable b ~name:"n" ~dtype:Dtype.F32 ~shape:[||] () in
  let init = B.assign b v (B.const_f b 0.0) in
  let bump = B.assign_add b v (B.const_f b 1.0) in
  let read = B.read b v in
  let s = Session.create (B.graph b) in
  Session.run_unit s [ init ];
  (* Targets execute for effect without being fetched. *)
  let options = Session.Run_options.v ~targets:[ bump ] () in
  let results, md = Session.run_with_metadata ~options s [ read ] in
  Alcotest.(check (float 0.)) "target ran" 1.0
    (Tensor.flat_get_f (List.hd results) 0);
  Alcotest.(check bool) "no stats unless asked" true
    (md.Session.Run_metadata.step_stats = None);
  (* Legacy wrappers still drive the same machinery. *)
  Session.run_unit s [ bump ];
  (match Session.run s [ read ] with
  | [ t ] -> Alcotest.(check (float 0.)) "legacy run" 2.0 (Tensor.flat_get_f t 0)
  | _ -> assert false);
  let _, tracer = Session.run_traced s [ read ] in
  Alcotest.(check bool) "run_traced still traces" true
    (Tracer.events tracer <> [])

let test_queue_metric_deltas () =
  let depth name =
    Option.value ~default:0.0
      (Metrics.find_value
         ~labels:[ ("queue", name) ]
         Metrics.default "octf_queue_depth")
  in
  let enq name =
    Option.value ~default:0.0
      (Metrics.find_value
         ~labels:[ ("queue", name) ]
         Metrics.default "octf_queue_enqueued_total")
  in
  let qname = "metrics_test_q" in
  let enq0 = enq qname in
  let b = B.create () in
  let q = B.fifo_queue b ~name:qname ~capacity:4 ~num_components:1 () in
  let enqueue = B.enqueue b q [ B.const_f b 42.0 ] in
  let dequeue = B.dequeue b q ~num_components:1 in
  let s = Session.create (B.graph b) in
  Session.run_unit s [ enqueue ];
  Session.run_unit s [ enqueue ];
  Alcotest.(check (float 1e-9)) "two enqueues counted" 2.0 (enq qname -. enq0);
  Alcotest.(check (float 1e-9)) "depth gauge tracks" 2.0 (depth qname);
  ignore (Session.run s dequeue);
  Alcotest.(check (float 1e-9)) "depth after dequeue" 1.0 (depth qname)

let suite =
  [
    Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "gauge basics" `Quick test_gauge_basics;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "histogram time on exception" `Quick
      test_histogram_time_on_exception;
    Alcotest.test_case "labels distinct series" `Quick
      test_labels_distinct_series;
    Alcotest.test_case "kind conflict rejected" `Quick
      test_kind_conflict_rejected;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "concurrent domains" `Quick test_concurrent_domains;
    Alcotest.test_case "pool scheduler instrumentation" `Quick
      test_pool_scheduler_instrumentation;
    Alcotest.test_case "prometheus format" `Quick test_prometheus_format;
    Alcotest.test_case "json round trip" `Quick test_json_round_trip;
    Alcotest.test_case "run metadata step stats" `Quick
      test_run_metadata_step_stats;
    Alcotest.test_case "run options targets and wrappers" `Quick
      test_run_options_targets_and_wrappers;
    Alcotest.test_case "queue metric deltas" `Quick test_queue_metric_deltas;
  ]
