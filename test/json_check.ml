(* Minimal recursive-descent JSON parser, used only by tests to check
   that exporter output (Chrome traces, metrics snapshots) is valid
   JSON — including escape handling — without adding a dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Invalid of string

let fail fmt = Printf.ksprintf (fun m -> raise (Invalid m)) fmt

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance st;
        go ()
    | _ -> ()
  in
  go ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> fail "expected %c at %d, got %c" c st.pos d
  | None -> fail "expected %c at %d, got end of input" c st.pos

let literal st word value =
  String.iter (fun c -> expect st c) word;
  value

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail "unterminated string at %d" st.pos
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance st; Buffer.add_char buf '/'; go ()
        | Some 'b' -> advance st; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance st; Buffer.add_char buf '\012'; go ()
        | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
        | Some 'u' ->
            advance st;
            if st.pos + 4 > String.length st.src then
              fail "truncated \\u escape at %d" st.pos;
            let hex = String.sub st.src st.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail "bad \\u escape %S at %d" hex st.pos
            in
            st.pos <- st.pos + 4;
            (* Tests only need codepoint validity, not UTF-8 encoding. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_string buf (Printf.sprintf "\\u%04x" code);
            go ()
        | Some c -> fail "bad escape \\%c at %d" c st.pos
        | None -> fail "unterminated escape at %d" st.pos)
    | Some c when Char.code c < 0x20 ->
        fail "unescaped control character %#x at %d" (Char.code c) st.pos
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek st with Some c when is_num_char c -> true | _ -> false do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> Num f
  | None -> fail "bad number %S at %d" text start

let rec parse_value st =
  skip_ws st;
  match peek st with
  | Some '{' -> parse_obj st
  | Some '[' -> parse_list st
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail "unexpected %c at %d" c st.pos
  | None -> fail "unexpected end of input at %d" st.pos

and parse_obj st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then (advance st; Obj [])
  else begin
    let fields = ref [] in
    let rec member () =
      skip_ws st;
      let key = parse_string st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      fields := (key, v) :: !fields;
      skip_ws st;
      match peek st with
      | Some ',' -> advance st; member ()
      | Some '}' -> advance st
      | _ -> fail "expected , or } at %d" st.pos
    in
    member ();
    Obj (List.rev !fields)
  end

and parse_list st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then (advance st; List [])
  else begin
    let items = ref [] in
    let rec item () =
      let v = parse_value st in
      items := v :: !items;
      skip_ws st;
      match peek st with
      | Some ',' -> advance st; item ()
      | Some ']' -> advance st
      | _ -> fail "expected , or ] at %d" st.pos
    in
    item ();
    List (List.rev !items)
  end

let parse src =
  let st = { src; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length src then
    fail "trailing garbage at %d" st.pos;
  v

(* Lookup helpers for assertions. *)
let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List l -> Some l | _ -> None

let to_string = function Str s -> Some s | _ -> None

let to_float = function Num f -> Some f | _ -> None
