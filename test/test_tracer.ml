open Octf_tensor
open Octf
module B = Builder

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_traces_kernels () =
  let b = B.create () in
  let x = B.const_f b 2.0 in
  let y = B.mul b (B.neg b x) (B.const_f b 3.0) in
  let s = Session.create ~optimize:false (B.graph b) in
  let results, tracer = Session.run_traced s [ y ] in
  Alcotest.(check (float 0.)) "result" (-6.0)
    (Tensor.flat_get_f (List.hd results) 0);
  let evs = Tracer.events tracer in
  Alcotest.(check int) "four kernels" 4 (List.length evs);
  let ops = List.map (fun e -> e.Tracer.op_type) evs in
  Alcotest.(check bool) "has Neg" true (List.mem "Neg" ops);
  Alcotest.(check bool) "has Mul" true (List.mem "Mul" ops);
  List.iter
    (fun e -> Alcotest.(check bool) "non-negative" true (e.Tracer.duration >= 0.0))
    evs

let test_summary_and_totals () =
  let b = B.create () in
  let x = B.const_f b 1.0 in
  let y = B.add_n b [ x; x; x ] in
  let s = Session.create ~optimize:false (B.graph b) in
  let _, tracer = Session.run_traced s [ y ] in
  let by_op = Tracer.by_op_type tracer in
  Alcotest.(check bool) "grouped" true
    (List.exists (fun (op, c, _) -> op = "Const" && c = 1) by_op);
  Alcotest.(check bool) "total >= max component" true
    (Tracer.total_time tracer
    >= List.fold_left (fun acc (_, _, t) -> Float.max acc t) 0.0 by_op)

let test_chrome_trace_shape () =
  let b = B.create () in
  let y = B.neg b (B.const_f b 1.0) in
  let s = Session.create ~optimize:false (B.graph b) in
  let _, tracer = Session.run_traced s [ y ] in
  let json = Tracer.to_chrome_trace tracer in
  Alcotest.(check bool) "traceEvents" true (contains json "\"traceEvents\"");
  Alcotest.(check bool) "phase X" true (contains json "\"ph\":\"X\"");
  Alcotest.(check bool) "op name present" true (contains json "\"Neg\"")

let test_distributed_trace_has_devices () =
  let c =
    Cluster.create
      ~jobs:[ ("ps", 1, [ Device.CPU ]); ("worker", 1, [ Device.CPU ]) ]
  in
  let b = B.create () in
  let v =
    B.variable b ~name:"w" ~device:"/job:ps/task:0" ~dtype:Dtype.F32
      ~shape:[||] ()
  in
  let init = B.assign b v (B.const_f b 1.0) in
  let r = B.read b v in
  let y =
    B.with_device b "/job:worker/task:0" (fun () ->
        B.mul b r (B.const_f b 2.0))
  in
  let s = Cluster.session c (B.graph b) in
  Session.run_unit s [ init ];
  let _, tracer = Session.run_traced s [ y ] in
  let devices =
    List.sort_uniq compare
      (List.map (fun e -> e.Tracer.device) (Tracer.events tracer))
  in
  Alcotest.(check bool) "events from both tasks" true
    (List.length devices >= 2);
  let ops = List.map (fun e -> e.Tracer.op_type) (Tracer.events tracer) in
  Alcotest.(check bool) "traces the communication" true
    (List.mem "Send" ops && List.mem "Recv" ops)

let test_chrome_trace_valid_json () =
  (* Node names with quotes, backslashes and control characters must be
     escaped so the trace is parseable JSON. *)
  let b = B.create () in
  let x = B.const_f b ~name:{|quo"te \back\slash|} 1.0 in
  let y = B.neg b ~name:"tab\there" x in
  let s = Session.create ~optimize:false (B.graph b) in
  let _, tracer = Session.run_traced s [ y ] in
  let json = Json_check.parse (Tracer.to_chrome_trace tracer) in
  let events =
    Option.get
      (Json_check.to_list (Option.get (Json_check.member "traceEvents" json)))
  in
  Alcotest.(check bool) "has events" true (List.length events >= 2);
  let names =
    List.filter_map
      (fun e -> Option.bind (Json_check.member "name" e) Json_check.to_string)
      events
  in
  Alcotest.(check bool) "escaped quote/backslash name round-trips" true
    (List.mem {|quo"te \back\slash|} names);
  Alcotest.(check bool) "escaped tab name round-trips" true
    (List.mem "tab\there" names);
  List.iter
    (fun e ->
      Alcotest.(check bool) "every event records bytes" true
        (Option.bind (Json_check.member "args" e) (Json_check.member "bytes")
        <> None))
    events

let test_summary_reports_lanes () =
  let b = B.create () in
  let x = B.const_f b 2.0 in
  let y = B.add_n b (List.init 6 (fun _ -> B.mul b x x)) in
  let s =
    Session.create ~optimize:false ~scheduler:Scheduler.Pool (B.graph b)
  in
  let _, tracer = Session.run_traced s [ y ] in
  Alcotest.(check bool) "lane utilization non-empty" true
    (Tracer.lane_utilization tracer <> []);
  List.iter
    (fun (_, _, busy, util) ->
      Alcotest.(check bool) "busy non-negative" true (busy >= 0.0);
      Alcotest.(check bool) "utilization a fraction" true
        (util >= 0.0 && util <= 1.0 +. 1e-9))
    (Tracer.lane_utilization tracer);
  let rendered = Format.asprintf "%a" Tracer.pp_summary tracer in
  Alcotest.(check bool) "summary has lanes block" true
    (contains rendered "lanes:");
  Alcotest.(check bool) "summary shows utilization" true
    (contains rendered "% busy" || contains rendered "busy")

let suite =
  [
    Alcotest.test_case "traces kernels" `Quick test_traces_kernels;
    Alcotest.test_case "summary and totals" `Quick test_summary_and_totals;
    Alcotest.test_case "chrome trace" `Quick test_chrome_trace_shape;
    Alcotest.test_case "distributed trace" `Quick
      test_distributed_trace_has_devices;
    Alcotest.test_case "chrome trace valid json" `Quick
      test_chrome_trace_valid_json;
    Alcotest.test_case "summary reports lanes" `Quick
      test_summary_reports_lanes;
  ]
