open Octf_tensor
open Octf
module B = Builder

let scalar t = Tensor.flat_get_f t 0

let test_step_caching () =
  let b = B.create () in
  let x = B.placeholder b Dtype.F32 in
  let y = B.neg b x in
  let z = B.abs b x in
  let s = Session.create (B.graph b) in
  let feed v = [ (x, Tensor.scalar_f v) ] in
  ignore (Session.run ~feeds:(feed 1.0) s [ y ]);
  ignore (Session.run ~feeds:(feed 2.0) s [ y ]);
  Alcotest.(check int) "one cached step" 1 (Session.cached_steps s);
  ignore (Session.run ~feeds:(feed 1.0) s [ z ]);
  Alcotest.(check int) "distinct fetch, new step" 2 (Session.cached_steps s);
  ignore (Session.run ~feeds:(feed 1.0) s [ y; z ]);
  Alcotest.(check int) "combined fetch, third step" 3 (Session.cached_steps s)

let test_pruning_skips_unrelated () =
  (* Fetching y must not execute an unrelated failing subgraph. *)
  let b = B.create () in
  let y = B.neg b (B.const_f b 2.0) in
  let boom = B.placeholder b ~name:"never_fed" Dtype.F32 in
  let _dangerous = B.neg b boom in
  let s = Session.create (B.graph b) in
  match Session.run s [ y ] with
  | [ v ] -> Alcotest.(check (float 0.)) "pruned" (-2.0) (scalar v)
  | _ -> Alcotest.fail "arity"

let test_unfed_placeholder_errors () =
  let b = B.create () in
  let x = B.placeholder b Dtype.F32 in
  let y = B.neg b x in
  let s = Session.create (B.graph b) in
  match Session.run s [ y ] with
  | _ -> Alcotest.fail "expected error"
  | exception Session.Run_error _ -> ()

let test_fetch_resource_errors () =
  let b = B.create () in
  let v = B.variable b ~name:"v" ~dtype:Dtype.F32 ~shape:[||] () in
  let s = Session.create (B.graph b) in
  match Session.run s [ v ] with
  | _ -> Alcotest.fail "expected error"
  | exception Session.Run_error _ -> ()

let test_target_style_fetch () =
  (* Fetching a NoOp group runs it and returns a placeholder scalar. *)
  let b = B.create () in
  let v = B.variable b ~name:"v" ~dtype:Dtype.F32 ~shape:[||] () in
  let init = B.assign b v (B.const_f b 1.0) in
  let bump = B.assign_add b v (B.const_f b 1.0) in
  let group = B.group b [ bump ] in
  let r = B.read b v in
  let s = Session.create (B.graph b) in
  Session.run_unit s [ init ];
  (match Session.run s [ r; group ] with
  | [ value; _dummy ] ->
      (* The group runs in the same step; read may see before or after,
         but after this call the variable must be 2. *)
      ignore value
  | _ -> Alcotest.fail "arity");
  match Session.run s [ r ] with
  | [ value ] -> Alcotest.(check (float 0.)) "bumped" 2.0 (scalar value)
  | _ -> Alcotest.fail "arity"

let test_concurrent_steps_share_state () =
  (* Figure 1's concurrency: many threads run increment steps against one
     session; all updates must land. *)
  let b = B.create () in
  let v = B.variable b ~name:"v" ~dtype:Dtype.F32 ~shape:[||] () in
  let init = B.assign b v (B.const_f b 0.0) in
  let bump = B.assign_add b v (B.const_f b 1.0) in
  let r = B.read b v in
  let s = Session.create (B.graph b) in
  Session.run_unit s [ init ];
  let threads =
    List.init 4 (fun _ ->
        Thread.create
          (fun () ->
            for _ = 1 to 50 do
              Session.run_unit s [ bump ]
            done)
          ())
  in
  List.iter Thread.join threads;
  match Session.run s [ r ] with
  | [ value ] -> Alcotest.(check (float 0.)) "200 bumps" 200.0 (scalar value)
  | _ -> Alcotest.fail "arity"

let test_multi_fetch_order () =
  let b = B.create () in
  let x = B.const_f b 3.0 in
  let a = B.neg b x and c = B.square b x in
  let s = Session.create (B.graph b) in
  match Session.run s [ c; a ] with
  | [ cv; av ] ->
      Alcotest.(check (float 0.)) "square first" 9.0 (scalar cv);
      Alcotest.(check (float 0.)) "neg second" (-3.0) (scalar av)
  | _ -> Alcotest.fail "arity"

let test_queue_pipeline_through_session () =
  (* Enqueue from one step, dequeue from another (Figure 1). *)
  let b = B.create () in
  let q = B.fifo_queue b ~capacity:4 ~num_components:1 () in
  let input = B.placeholder b Dtype.F32 in
  let enq = B.enqueue b q [ input ] in
  let deq = List.hd (B.dequeue b q ~num_components:1) in
  let s = Session.create (B.graph b) in
  Session.run_unit ~feeds:[ (input, Tensor.scalar_f 11.0) ] s [ enq ];
  Session.run_unit ~feeds:[ (input, Tensor.scalar_f 22.0) ] s [ enq ];
  let v1 = List.hd (Session.run s [ deq ]) in
  let v2 = List.hd (Session.run s [ deq ]) in
  Alcotest.(check (float 0.)) "fifo through steps" 11.0 (scalar v1);
  Alcotest.(check (float 0.)) "fifo through steps 2" 22.0 (scalar v2)

let test_save_restore_through_graph () =
  let b = B.create () in
  let v = B.variable b ~name:"v" ~dtype:Dtype.F32 ~shape:[| 2 |] () in
  let init =
    B.assign b v (B.const b (Tensor.of_float_array [| 2 |] [| 5.; 6. |]))
  in
  let clobber = B.assign b v (B.const b (Tensor.zeros Dtype.F32 [| 2 |])) in
  let r = B.read b v in
  let filename = B.placeholder b Dtype.String in
  let save = B.save b ~filename [ ("v", r) ] in
  let restored = B.restore b ~filename [ "v" ] in
  let restore_op = B.assign b v (List.hd restored) in
  let s = Session.create (B.graph b) in
  let path = Filename.temp_file "session_ckpt" ".ckpt" in
  let feeds = [ (filename, Tensor.scalar_s path) ] in
  Session.run_unit s [ init ];
  Session.run_unit ~feeds s [ save ];
  Session.run_unit s [ clobber ];
  Session.run_unit ~feeds s [ restore_op ];
  (match Session.run s [ r ] with
  | [ value ] ->
      Alcotest.(check bool) "restored" true
        (Tensor.approx_equal value (Tensor.of_float_array [| 2 |] [| 5.; 6. |]))
  | _ -> Alcotest.fail "arity");
  Sys.remove path

(* Session.Config: one record carries every construction knob; the
   legacy optional labels survive as deprecated wrappers that override
   the corresponding config field. *)
let test_config_resolution () =
  let b = B.create () in
  let x = B.placeholder b Dtype.F32 in
  let _ = B.neg b x in
  let g = B.graph b in
  let s =
    Session.create
      ~config:(Session.Config.v ~scheduler:Scheduler.Pool ~max_in_flight:4 ())
      g
  in
  Alcotest.(check bool) "config scheduler honored" true
    (Session.scheduler s = Scheduler.Pool);
  Alcotest.(check int) "config max_in_flight honored" 4
    (Session.max_in_flight s);
  (* a legacy label beats the config field *)
  let s2 =
    Session.create
      ~config:(Session.Config.v ~max_in_flight:4 ())
      ~max_in_flight:2 g
  in
  Alcotest.(check int) "legacy label wins" 2 (Session.max_in_flight s2);
  (* Config.default resolves like no arguments at all *)
  let s3 = Session.create ~config:Session.Config.default g in
  Alcotest.(check bool) "default scheduler" true
    (Session.scheduler s3 = Scheduler.default_policy ());
  (* barrier in the config pins the pipeline to one step *)
  let s4 =
    Session.create
      ~config:(Session.Config.v ~max_in_flight:8 ~barrier:true ())
      g
  in
  Alcotest.(check int) "barrier wins over max_in_flight" 1
    (Session.max_in_flight s4)

let test_config_passes_and_precompile () =
  let b = B.create () in
  let x = B.placeholder b Dtype.F32 in
  let y = B.mul b (B.neg b x) (B.const_f b 2.0) in
  let g = B.graph b in
  (* prune-only session via passes:[] behaves like legacy optimize:false *)
  let s = Session.create ~config:(Session.Config.v ~passes:[] ()) g in
  (match Session.run ~feeds:[ (x, Tensor.scalar_f 3.0) ] s [ y ] with
  | [ v ] -> Alcotest.(check (float 0.)) "value" (-6.0) (scalar v)
  | _ -> Alcotest.fail "arity");
  (* precompile populates the step cache without running anything *)
  let s2 = Session.create g in
  Alcotest.(check int) "cache empty" 0 (Session.cached_steps s2);
  Session.precompile ~feeds:[ x ] s2 [ y ];
  Alcotest.(check int) "one precompiled step" 1 (Session.cached_steps s2);
  (match Session.run ~feeds:[ (x, Tensor.scalar_f 2.0) ] s2 [ y ] with
  | [ v ] -> Alcotest.(check (float 0.)) "value" (-4.0) (scalar v)
  | _ -> Alcotest.fail "arity");
  Alcotest.(check int) "run hit the precompiled step" 1
    (Session.cached_steps s2)

let suite =
  [
    Alcotest.test_case "step caching" `Quick test_step_caching;
    Alcotest.test_case "config resolution" `Quick test_config_resolution;
    Alcotest.test_case "config passes + precompile" `Quick
      test_config_passes_and_precompile;
    Alcotest.test_case "pruning" `Quick test_pruning_skips_unrelated;
    Alcotest.test_case "unfed placeholder" `Quick test_unfed_placeholder_errors;
    Alcotest.test_case "fetch resource errors" `Quick
      test_fetch_resource_errors;
    Alcotest.test_case "target-style fetch" `Quick test_target_style_fetch;
    Alcotest.test_case "concurrent steps" `Quick
      test_concurrent_steps_share_state;
    Alcotest.test_case "multi fetch order" `Quick test_multi_fetch_order;
    Alcotest.test_case "queue pipeline" `Quick
      test_queue_pipeline_through_session;
    Alcotest.test_case "save/restore in graph" `Quick
      test_save_restore_through_graph;
  ]
