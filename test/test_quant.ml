(* Quantization (§5): 8-bit affine codes with gemmlowp-style integer
   matmul accumulation — kernel arithmetic, the builder surface, the
   calibration API and the Quantize optimizer pass. Property tests pin
   the code invariants every other layer assumes: ranges include 0.0
   and are never degenerate, round-trip error is at most one
   quantization step, codes live in 0..255. *)

open Octf_tensor
open Octf
module B = Builder
module Q = Quant_kernels

let metric name =
  Option.value ~default:0.0 (Metrics.find_value Metrics.default name)

(* ------------------------- legacy unit tests ------------------------ *)

let test_roundtrip_error_bound () =
  let b = B.create () in
  let x = B.placeholder b ~shape:[| 16 |] Dtype.F32 in
  let q, lo, hi = B.quantize b x in
  let back = B.dequantize b q lo hi in
  let s = Session.create ~optimize:false (B.graph b) in
  let rng = Rng.create 21 in
  let point = Tensor.uniform rng [| 16 |] ~lo:(-4.0) ~hi:4.0 in
  let v = List.hd (Session.run ~feeds:[ (x, point) ] s [ back ]) in
  (* Max quantization error is half a step: (hi - lo) / 255 / 2 ~ 0.016. *)
  for i = 0 to 15 do
    let err = Float.abs (Tensor.flat_get_f v i -. Tensor.flat_get_f point i) in
    if err > 8.0 /. 255.0 then Alcotest.failf "error %f too large" err
  done

let test_codes_in_range () =
  let b = B.create () in
  let x = B.const b (Tensor.of_float_array [| 3 |] [| -1.0; 0.0; 3.0 |]) in
  let q, _, _ = B.quantize b x in
  let s = Session.create ~optimize:false (B.graph b) in
  let codes = Tensor.to_int_array (List.hd (Session.run s [ q ])) in
  Array.iter
    (fun c -> if c < 0 || c > 255 then Alcotest.fail "code out of range")
    codes;
  (* min maps to 0 and max to 255 *)
  Alcotest.(check int) "min code" 0 codes.(0);
  Alcotest.(check int) "max code" 255 codes.(2)

let test_quantized_matmul_close () =
  let b = B.create () in
  let xa = B.placeholder b ~shape:[| 4; 6 |] Dtype.F32 in
  let xb = B.placeholder b ~shape:[| 6; 3 |] Dtype.F32 in
  let exact = B.matmul b xa xb in
  let approx = B.quantized_matmul b (B.quantize b xa) (B.quantize b xb) in
  let s = Session.create ~optimize:false (B.graph b) in
  let rng = Rng.create 31 in
  let a = Tensor.uniform rng [| 4; 6 |] ~lo:(-1.0) ~hi:1.0 in
  let c = Tensor.uniform rng [| 6; 3 |] ~lo:(-1.0) ~hi:1.0 in
  let feeds = [ (xa, a); (xb, c) ] in
  match Session.run ~feeds s [ exact; approx ] with
  | [ e; ap ] ->
      Alcotest.(check bool) "within 8-bit tolerance" true
        (Tensor.approx_equal ~tol:0.05 e ap)
  | _ -> Alcotest.fail "arity"

let test_quantize_constant_tensor () =
  (* A constant tensor still gets a non-degenerate range. *)
  let b = B.create () in
  let x = B.const b (Tensor.full Dtype.F32 [| 4 |] 2.0) in
  let q, lo, hi = B.quantize b x in
  let back = B.dequantize b q lo hi in
  let s = Session.create ~optimize:false (B.graph b) in
  let v = List.hd (Session.run s [ back ]) in
  Alcotest.(check bool) "close to 2" true
    (Float.abs (Tensor.flat_get_f v 0 -. 2.0) < 0.02)

(* ------------------------ property tests ---------------------------- *)

let tensor_of_list vs =
  Tensor.of_float_array [| List.length vs |] (Array.of_list vs)

(* Finite floats in a range wide enough to exercise scale diversity but
   free of overflow concerns. *)
let float_gen = QCheck.float_range (-1000.0) 1000.0

(* Round trip through codes moves no element by more than one
   quantization step (the analytic bound is half a step for interior
   values; clamping at the range ends keeps it under a full step).
   Covers empty, constant and negative-only tensors through the list
   generator and the two mapped variants below. *)
let roundtrip_ok vs =
  let t = tensor_of_list vs in
  let codes, lo, hi = Q.quantize t in
  let step = (hi -. lo) /. Q.levels in
  let back = Q.dequantize codes lo hi in
  let ok = ref true in
  List.iteri
    (fun i v ->
      let err = Float.abs (Tensor.flat_get_f back i -. v) in
      if err > step +. 1e-9 then ok := false)
    vs;
  !ok

let prop_roundtrip_one_step =
  QCheck.Test.make ~name:"roundtrip error <= one step" ~count:200
    QCheck.(small_list float_gen)
    roundtrip_ok

let prop_roundtrip_negative_only =
  QCheck.Test.make ~name:"roundtrip on negative-only tensors" ~count:100
    QCheck.(small_list float_gen)
    (fun vs -> roundtrip_ok (List.map (fun v -> -.Float.abs v -. 0.5) vs))

let prop_roundtrip_constant =
  QCheck.Test.make ~name:"roundtrip on constant tensors" ~count:100
    QCheck.(pair float_gen (int_range 1 32))
    (fun (c, n) -> roundtrip_ok (List.init n (fun _ -> c)))

(* The range invariants everything else assumes: lo <= 0 <= hi, never
   degenerate, and the zero-point code decodes to (nearly) 0.0. *)
let prop_range_invariants =
  QCheck.Test.make ~name:"range includes zero, never degenerate" ~count:200
    QCheck.(small_list float_gen)
    (fun vs ->
      let lo, hi = Q.range_of (tensor_of_list vs) in
      let zp = Q.zero_point lo hi in
      let step = (hi -. lo) /. Q.levels in
      let zp_value = lo +. (float_of_int zp *. step) in
      lo <= 0.0 && hi >= 0.0
      && hi -. lo > 1e-9
      && zp >= 0 && zp <= 255
      && Float.abs zp_value <= (step /. 2.0) +. 1e-9)

let prop_codes_in_range =
  QCheck.Test.make ~name:"codes always in 0..255" ~count:200
    QCheck.(small_list float_gen)
    (fun vs ->
      let codes, _, _ = Q.quantize (tensor_of_list vs) in
      let ok = ref true in
      for i = 0 to Tensor.numel codes - 1 do
        let c = Tensor.flat_get_i codes i in
        if c < 0 || c > 255 then ok := false
      done;
      !ok)

let test_empty_tensor () =
  (* numel = 0: quantize yields an empty code tensor with a sane range. *)
  let t = Tensor.of_float_array [| 0 |] [||] in
  let codes, lo, hi = Q.quantize t in
  Alcotest.(check int) "no codes" 0 (Tensor.numel codes);
  Alcotest.(check bool) "sane range" true (lo <= 0.0 && hi > lo);
  Alcotest.(check int) "dequantize empty" 0
    (Tensor.numel (Q.dequantize codes lo hi))

let test_quantize_with_range_clamps () =
  let t = Tensor.of_float_array [| 3 |] [| -10.0; 1.0; 99.0 |] in
  let codes = Q.quantize_with_range t 0.0 4.0 in
  let back = Q.dequantize codes 0.0 4.0 in
  Alcotest.(check (float 1e-6)) "below clamps to lo" 0.0
    (Tensor.flat_get_f back 0);
  Alcotest.(check (float 1e-6)) "above clamps to hi" 4.0
    (Tensor.flat_get_f back 2);
  Alcotest.(check bool) "interior close" true
    (Float.abs (Tensor.flat_get_f back 1 -. 1.0) <= 4.0 /. 255.0)

(* -------------------- structured kernel errors ---------------------- *)

(* Regression: shape violations used to escape as bare
   [Invalid_argument], bypassing the session's typed error path. *)
let test_matmul_shape_mismatch_structured () =
  let qa, alo, ahi = Q.quantize (Tensor.ones Dtype.F32 [| 2; 3 |]) in
  let qb, blo, bhi = Q.quantize (Tensor.ones Dtype.F32 [| 4; 5 |]) in
  match Q.quantized_matmul qa alo ahi qb blo bhi with
  | exception Step_failure.Error { cause = Step_failure.Invalid_graph _; _ } ->
      ()
  | exception Invalid_argument m ->
      Alcotest.failf "bare Invalid_argument escaped: %s" m
  | exception e ->
      Alcotest.failf "unexpected exception %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "shape mismatch not detected"

let test_degenerate_range_structured () =
  let t = Tensor.ones Dtype.F32 [| 4 |] in
  match Q.quantize_with_range t 2.0 2.0 with
  | exception Step_failure.Error { cause = Step_failure.Invalid_graph _; _ } ->
      ()
  | exception e ->
      Alcotest.failf "unexpected exception %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "degenerate range not detected"

(* ----------------------- richer kernel shapes ----------------------- *)

let test_quantized_conv2d_close () =
  let b = B.create () in
  let x = B.placeholder b ~shape:[| 2; 6; 6; 3 |] Dtype.F32 in
  let f = B.placeholder b ~shape:[| 3; 3; 3; 4 |] Dtype.F32 in
  let exact = B.conv2d b ~strides:(1, 1) ~padding:`Same x f in
  let approx =
    B.quantized_conv2d b ~strides:(1, 1) ~padding:`Same (B.quantize b x)
      (B.quantize b f)
  in
  let s = Session.create ~optimize:false (B.graph b) in
  let rng = Rng.create 41 in
  let xv = Tensor.uniform rng [| 2; 6; 6; 3 |] ~lo:(-1.0) ~hi:1.0 in
  let fv = Tensor.uniform rng [| 3; 3; 3; 4 |] ~lo:(-1.0) ~hi:1.0 in
  match Session.run ~feeds:[ (x, xv); (f, fv) ] s [ exact; approx ] with
  | [ e; ap ] ->
      Alcotest.(check bool) "conv within 8-bit tolerance" true
        (Tensor.approx_equal ~tol:0.25 e ap)
  | _ -> Alcotest.fail "arity"

let test_batched_quantized_matmul () =
  (* Rank-3 lhs against shared 2-D weights: every batch slice must match
     its own 2-D quantized product. *)
  let rng = Rng.create 51 in
  let a = Tensor.uniform rng [| 3; 4; 6 |] ~lo:(-1.0) ~hi:1.0 in
  let w = Tensor.uniform rng [| 6; 5 |] ~lo:(-1.0) ~hi:1.0 in
  let qa, alo, ahi = Q.quantize a in
  let qw, wlo, whi = Q.quantize w in
  let out = Q.quantized_matmul qa alo ahi qw wlo whi in
  Alcotest.(check (list int)) "batched shape" [ 3; 4; 5 ]
    (Array.to_list (Tensor.shape out));
  for s = 0 to 2 do
    (* slice s of the codes, re-packaged as a standalone 2-D quantized
       operand with the same range *)
    let slice = Tensor.zeros Dtype.F32 [| 4; 6 |] in
    for i = 0 to 23 do
      Tensor.flat_set_f slice i
        (Tensor.flat_get_f (Q.dequantize qa alo ahi) ((s * 24) + i))
    done;
    let qs = Q.quantize_with_range slice alo ahi in
    let expect = Q.quantized_matmul qs alo ahi qw wlo whi in
    for i = 0 to 19 do
      let got = Tensor.flat_get_f out ((s * 20) + i) in
      let want = Tensor.flat_get_f expect i in
      if Float.abs (got -. want) > 1e-5 then
        Alcotest.failf "slice %d diverges at %d: %f vs %f" s i got want
    done
  done

let test_epilogue_bias_relu () =
  let rng = Rng.create 61 in
  let a = Tensor.uniform rng [| 4; 6 |] ~lo:(-1.0) ~hi:1.0 in
  let w = Tensor.uniform rng [| 6; 3 |] ~lo:(-1.0) ~hi:1.0 in
  let bias = Tensor.of_float_array [| 3 |] [| 0.5; -0.5; 0.1 |] in
  let qa, alo, ahi = Q.quantize a in
  let qw, wlo, whi = Q.quantize w in
  let got = Q.quantized_matmul ~bias ~relu:true qa alo ahi qw wlo whi in
  (* float reference: relu(a @ w + bias) *)
  for i = 0 to 3 do
    for j = 0 to 2 do
      let acc = ref (Tensor.flat_get_f bias j) in
      for p = 0 to 5 do
        acc :=
          !acc
          +. (Tensor.flat_get_f a ((i * 6) + p)
             *. Tensor.flat_get_f w ((p * 3) + j))
      done;
      let want = Float.max 0.0 !acc in
      let g = Tensor.flat_get_f got ((i * 3) + j) in
      if Float.abs (g -. want) > 0.06 then
        Alcotest.failf "epilogue diverges at (%d,%d): %f vs %f" i j g want
    done
  done

let test_matmul_q_codes_out () =
  (* The codes-out variant requantizes into the calibrated range; its
     dequantized value must match the float-out kernel within one output
     quantization step. *)
  let b = B.create () in
  let xa = B.placeholder b ~shape:[| 4; 6 |] Dtype.F32 in
  let xw = B.placeholder b ~shape:[| 6; 3 |] Dtype.F32 in
  let qa = B.quantize b xa and qw = B.quantize b xw in
  let float_out = B.quantized_matmul b qa qw in
  let oc, olo, ohi =
    B.quantized_matmul_q b ~out_range:(-4.0, 4.0) qa qw
  in
  let deq = B.dequantize b oc olo ohi in
  let s = Session.create ~optimize:false (B.graph b) in
  let rng = Rng.create 71 in
  let a = Tensor.uniform rng [| 4; 6 |] ~lo:(-1.0) ~hi:1.0 in
  let w = Tensor.uniform rng [| 6; 3 |] ~lo:(-1.0) ~hi:1.0 in
  match Session.run ~feeds:[ (xa, a); (xw, w) ] s [ float_out; deq ] with
  | [ f; d ] ->
      let step = 8.0 /. Q.levels in
      for i = 0 to Tensor.numel f - 1 do
        let err = Float.abs (Tensor.flat_get_f f i -. Tensor.flat_get_f d i) in
        if err > step +. 1e-6 then
          Alcotest.failf "requantize error %f exceeds a step at %d" err i
      done
  | _ -> Alcotest.fail "arity"

(* --------------------------- calibration ---------------------------- *)

let test_calibration_min_max () =
  let cal = Quant_calibration.create () in
  Quant_calibration.observe cal "act"
    (Tensor.of_float_array [| 2 |] [| 1.0; 3.0 |]);
  Quant_calibration.observe cal "act"
    (Tensor.of_float_array [| 2 |] [| -2.0; 2.0 |]);
  (match Quant_calibration.ranges cal "act" with
  | Some (lo, hi) ->
      Alcotest.(check (float 1e-9)) "lo" (-2.0) lo;
      Alcotest.(check (float 1e-9)) "hi" 3.0 hi
  | None -> Alcotest.fail "no range");
  Alcotest.(check (option (pair (float 0.) (float 0.))))
    "unobserved" None
    (Quant_calibration.ranges cal "other");
  Alcotest.(check (list string)) "observed" [ "act" ]
    (Quant_calibration.observed cal)

let test_calibration_sanitizes () =
  let cal = Quant_calibration.create () in
  (* positive-only observations: the range must still include zero *)
  Quant_calibration.observe cal "pos"
    (Tensor.of_float_array [| 2 |] [| 2.0; 5.0 |]);
  (match Quant_calibration.ranges cal "pos" with
  | Some (lo, hi) -> Alcotest.(check bool) "zero in" true (lo <= 0.0 && hi >= 5.0)
  | None -> Alcotest.fail "no range");
  (* constant observations: degenerate range widened *)
  Quant_calibration.observe cal "flat" (Tensor.zeros Dtype.F32 [| 4 |]);
  match Quant_calibration.ranges cal "flat" with
  | Some (lo, hi) -> Alcotest.(check bool) "widened" true (hi -. lo >= 1.0)
  | None -> Alcotest.fail "no range"

let test_calibration_ema () =
  let cal = Quant_calibration.create ~mode:(Quant_calibration.Ema 0.5) () in
  Quant_calibration.observe cal "act"
    (Tensor.of_float_array [| 1 |] [| 8.0 |]);
  Quant_calibration.observe cal "act"
    (Tensor.of_float_array [| 1 |] [| 4.0 |]);
  (match Quant_calibration.ranges cal "act" with
  | Some (_, hi) -> Alcotest.(check (float 1e-9)) "blended hi" 6.0 hi
  | None -> Alcotest.fail "no range");
  match Quant_calibration.create ~mode:(Quant_calibration.Ema 1.5) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad decay accepted"

(* ------------------------- the optimizer pass ----------------------- *)

(* A one-layer frozen model: matmul against Const weights with a Const
   bias and a relu, plus an Identity so the absorbed chain is interior
   (fetched nodes are never rewritten). *)
let one_layer_graph () =
  let b = B.create () in
  let rngw = Rng.create 81 in
  let x = B.placeholder b ~shape:[| 2; 4 |] Dtype.F32 in
  let w = B.const b (Tensor.uniform rngw [| 4; 3 |] ~lo:(-1.0) ~hi:1.0) in
  let bias = B.const b (Tensor.of_float_array [| 3 |] [| 0.2; -0.1; 0.3 |]) in
  let act = B.relu b ~name:"act1" (B.add b (B.matmul b x w) bias) in
  let out = B.identity b act in
  (b, x, out)

(* Count [op] among the nodes the fetch actually depends on: rewriting
   passes leave the losing originals disconnected in the graph, so a
   whole-graph count would see stale nodes. *)
let count_ops session (fetch : B.output) op =
  let graph = Session.graph session in
  let seen = Hashtbl.create 16 in
  let n = ref 0 in
  let rec walk id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      let node = Graph.get graph id in
      if node.Node.op_type = op then incr n;
      Array.iter (fun (e : Node.endpoint) -> walk e.Node.node_id) node.Node.inputs;
      List.iter walk node.Node.control_inputs
    end
  in
  walk fetch.B.node.Node.id;
  !n

let feed_x rng = Tensor.uniform rng [| 2; 4 |] ~lo:(-1.0) ~hi:1.0

let test_pass_calibrated_island () =
  let islands0 = metric "octf_quant_islands_total" in
  let wf0 = metric "octf_quant_weight_bytes_float_total" in
  let wc0 = metric "octf_quant_weight_bytes_code_total" in
  let b, x, out = one_layer_graph () in
  let xv = feed_x (Rng.create 91) in
  let sref = Session.create ~optimize:false (B.graph b) in
  let reference = List.hd (Session.run ~feeds:[ (x, xv) ] sref [ out ]) in
  let ranges = function "act1" -> Some (0.0, 4.0) | _ -> None in
  let b2, x2, out2 = one_layer_graph () in
  let sq =
    Session.create
      ~passes:[ Graph_optimizer.Quantize ranges; Graph_optimizer.Prune ]
      (B.graph b2)
  in
  let got = List.hd (Session.run ~feeds:[ (x2, xv) ] sq [ out2 ]) in
  Alcotest.(check bool) "quantized output close" true
    (Tensor.approx_equal ~tol:0.1 reference got);
  Alcotest.(check int) "codes-out island present" 1
    (count_ops sq out2 "QuantizedMatMulQ");
  Alcotest.(check int) "relu absorbed" 0 (count_ops sq out2 "Relu");
  Alcotest.(check bool) "island metric bumped" true
    (metric "octf_quant_islands_total" >= islands0 +. 1.0);
  (* 4x weight memory cut, measured on this pass's weights alone *)
  let df = metric "octf_quant_weight_bytes_float_total" -. wf0 in
  let dc = metric "octf_quant_weight_bytes_code_total" -. wc0 in
  Alcotest.(check (float 1e-9)) "weight bytes ratio" 4.0 (df /. dc)

let test_pass_dynamic_island () =
  let islands0 = metric "octf_quant_islands_total" in
  let b, x, out = one_layer_graph () in
  let xv = feed_x (Rng.create 92) in
  let sref = Session.create ~optimize:false (B.graph b) in
  let reference = List.hd (Session.run ~feeds:[ (x, xv) ] sref [ out ]) in
  let b2, x2, out2 = one_layer_graph () in
  let sq =
    Session.create
      ~passes:
        [ Graph_optimizer.Quantize (fun _ -> None); Graph_optimizer.Prune ]
      (B.graph b2)
  in
  let got = List.hd (Session.run ~feeds:[ (x2, xv) ] sq [ out2 ]) in
  Alcotest.(check bool) "dynamic quantized output close" true
    (Tensor.approx_equal ~tol:0.1 reference got);
  (* no output range: the island is the root alone, float-out *)
  Alcotest.(check int) "float-out island" 1 (count_ops sq out2 "QuantizedMatMul");
  Alcotest.(check int) "bias/relu stay float" 1 (count_ops sq out2 "Relu");
  Alcotest.(check bool) "island metric bumped" true
    (metric "octf_quant_islands_total" >= islands0 +. 1.0)

(* Two calibrated layers back to back: the Dequantize -> Quantize pair
   between them must be elided so the islands exchange codes. *)
let two_layer_graph () =
  let b = B.create () in
  let rngw = Rng.create 82 in
  let x = B.placeholder b ~shape:[| 2; 4 |] Dtype.F32 in
  let w1 = B.const b (Tensor.uniform rngw [| 4; 5 |] ~lo:(-1.0) ~hi:1.0) in
  let b1 = B.const b (Tensor.of_float_array [| 5 |] [| 0.1; 0.2; -0.1; 0.0; 0.3 |]) in
  let act1 = B.relu b ~name:"layer1" (B.add b (B.matmul b x w1) b1) in
  let w2 = B.const b (Tensor.uniform rngw [| 5; 3 |] ~lo:(-1.0) ~hi:1.0) in
  let b2 = B.const b (Tensor.of_float_array [| 3 |] [| 0.0; 0.1; -0.2 |]) in
  let act2 = B.relu b ~name:"layer2" (B.add b (B.matmul b act1 w2) b2) in
  let out = B.identity b act2 in
  (b, x, out)

let test_pass_elides_between_islands () =
  let elisions0 = metric "octf_quant_elisions_total" in
  let b, x, out = two_layer_graph () in
  let xv = feed_x (Rng.create 93) in
  let sref = Session.create ~optimize:false (B.graph b) in
  let reference = List.hd (Session.run ~feeds:[ (x, xv) ] sref [ out ]) in
  let ranges = function
    | "layer1" -> Some (0.0, 4.0)
    | "layer2" -> Some (0.0, 8.0)
    | _ -> None
  in
  let b2, x2, out2 = two_layer_graph () in
  let sq =
    Session.create
      ~passes:[ Graph_optimizer.Quantize ranges; Graph_optimizer.Prune ]
      (B.graph b2)
  in
  let got = List.hd (Session.run ~feeds:[ (x2, xv) ] sq [ out2 ]) in
  Alcotest.(check bool) "two-layer quantized output close" true
    (Tensor.approx_equal ~tol:0.2 reference got);
  Alcotest.(check int) "both islands rewritten" 2
    (count_ops sq out2 "QuantizedMatMulQ");
  (* layer2's input Quantize was elided: only layer1's input quantizes *)
  Alcotest.(check int) "one live input quantize" 1
    (count_ops sq out2 "Quantize" + count_ops sq out2 "QuantizeRange");
  Alcotest.(check bool) "elision metric bumped" true
    (metric "octf_quant_elisions_total" >= elisions0 +. 1.0)

let test_pass_inert_on_variables () =
  (* Weights behind Read (a training graph): nothing is eligible, and
     the output is bit-identical to the unoptimized run. *)
  let build () =
    let b = B.create () in
    let v =
      B.variable b ~name:"w" ~dtype:Dtype.F32 ~shape:[| 4; 3 |] ()
    in
    let init = B.assign b v (B.const b (Tensor.ones Dtype.F32 [| 4; 3 |])) in
    let x = B.placeholder b ~shape:[| 2; 4 |] Dtype.F32 in
    let out = B.identity b (B.relu b (B.matmul b x (B.read b v))) in
    (b, init, x, out)
  in
  let xv = feed_x (Rng.create 94) in
  let b, init, x, out = build () in
  let sref = Session.create ~optimize:false (B.graph b) in
  Session.run_unit sref [ init ];
  let reference = List.hd (Session.run ~feeds:[ (x, xv) ] sref [ out ]) in
  let b2, init2, x2, out2 = build () in
  let sq =
    Session.create
      ~passes:
        [ Graph_optimizer.Quantize (fun _ -> None); Graph_optimizer.Prune ]
      (B.graph b2)
  in
  Session.run_unit sq [ init2 ];
  let got = List.hd (Session.run ~feeds:[ (x2, xv) ] sq [ out2 ]) in
  Alcotest.(check bool) "bit-identical" true (Tensor.equal reference got);
  Alcotest.(check int) "no islands" 0
    (count_ops sq out2 "QuantizedMatMul" + count_ops sq out2 "QuantizedMatMulQ")

let test_pass_skips_fetched_root () =
  (* Fetching the matmul itself pins it: logits stay float. *)
  let b = B.create () in
  let x = B.placeholder b ~shape:[| 2; 4 |] Dtype.F32 in
  let w = B.const b (Tensor.ones Dtype.F32 [| 4; 3 |]) in
  let out = B.matmul b x w in
  let sq =
    Session.create
      ~passes:
        [ Graph_optimizer.Quantize (fun _ -> None); Graph_optimizer.Prune ]
      (B.graph b)
  in
  let xv = feed_x (Rng.create 95) in
  let got = List.hd (Session.run ~feeds:[ (x, xv) ] sq [ out ]) in
  Alcotest.(check int) "not rewritten" 0
    (count_ops sq out "QuantizedMatMul" + count_ops sq out "QuantizedMatMulQ");
  (* exact float matmul of ones-weights: row sums of x *)
  for i = 0 to 1 do
    let want = ref 0.0 in
    for j = 0 to 3 do
      want := !want +. Tensor.flat_get_f xv ((i * 4) + j)
    done;
    for j = 0 to 2 do
      Alcotest.(check (float 1e-5)) "exact" !want
        (Tensor.flat_get_f got ((i * 3) + j))
    done
  done

let test_pass_quantizes_conv () =
  let b = B.create () in
  let rngw = Rng.create 83 in
  let x = B.placeholder b ~shape:[| 1; 6; 6; 2 |] Dtype.F32 in
  let f = B.const b (Tensor.uniform rngw [| 3; 3; 2; 4 |] ~lo:(-1.0) ~hi:1.0) in
  let conv = B.conv2d b ~name:"c1" ~strides:(1, 1) ~padding:`Same x f in
  let out = B.identity b (B.relu b ~name:"act" conv) in
  let xv = Tensor.uniform (Rng.create 96) [| 1; 6; 6; 2 |] ~lo:(-1.0) ~hi:1.0 in
  let sref = Session.create ~optimize:false (B.graph b) in
  let reference = List.hd (Session.run ~feeds:[ (x, xv) ] sref [ out ]) in
  let sq =
    Session.create
      ~passes:
        [ Graph_optimizer.Quantize (fun _ -> None); Graph_optimizer.Prune ]
      (B.graph b)
  in
  let got = List.hd (Session.run ~feeds:[ (x, xv) ] sq [ out ]) in
  Alcotest.(check int) "conv island" 1 (count_ops sq out "QuantizedConv2D");
  Alcotest.(check bool) "conv output close" true
    (Tensor.approx_equal ~tol:0.2 reference got)

let suite =
  [
    Alcotest.test_case "roundtrip error bound" `Quick test_roundtrip_error_bound;
    Alcotest.test_case "codes in range" `Quick test_codes_in_range;
    Alcotest.test_case "quantized matmul" `Quick test_quantized_matmul_close;
    Alcotest.test_case "constant tensor" `Quick test_quantize_constant_tensor;
    QCheck_alcotest.to_alcotest prop_roundtrip_one_step;
    QCheck_alcotest.to_alcotest prop_roundtrip_negative_only;
    QCheck_alcotest.to_alcotest prop_roundtrip_constant;
    QCheck_alcotest.to_alcotest prop_range_invariants;
    QCheck_alcotest.to_alcotest prop_codes_in_range;
    Alcotest.test_case "empty tensor" `Quick test_empty_tensor;
    Alcotest.test_case "calibrated range clamps" `Quick
      test_quantize_with_range_clamps;
    Alcotest.test_case "shape mismatch is structured" `Quick
      test_matmul_shape_mismatch_structured;
    Alcotest.test_case "degenerate range is structured" `Quick
      test_degenerate_range_structured;
    Alcotest.test_case "quantized conv2d" `Quick test_quantized_conv2d_close;
    Alcotest.test_case "batched quantized matmul" `Quick
      test_batched_quantized_matmul;
    Alcotest.test_case "bias+relu epilogue" `Quick test_epilogue_bias_relu;
    Alcotest.test_case "codes-out requantization" `Quick
      test_matmul_q_codes_out;
    Alcotest.test_case "calibration min/max" `Quick test_calibration_min_max;
    Alcotest.test_case "calibration sanitizes ranges" `Quick
      test_calibration_sanitizes;
    Alcotest.test_case "calibration EMA" `Quick test_calibration_ema;
    Alcotest.test_case "pass: calibrated island" `Quick
      test_pass_calibrated_island;
    Alcotest.test_case "pass: dynamic island" `Quick test_pass_dynamic_island;
    Alcotest.test_case "pass: elision between islands" `Quick
      test_pass_elides_between_islands;
    Alcotest.test_case "pass: inert on variables" `Quick
      test_pass_inert_on_variables;
    Alcotest.test_case "pass: fetched root stays float" `Quick
      test_pass_skips_fetched_root;
    Alcotest.test_case "pass: conv island" `Quick test_pass_quantizes_conv;
  ]
