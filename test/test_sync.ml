(* Synchronous replica coordination (§4.4): drive each Figure 4 scheme
   with real worker threads on a deterministic problem. Loss = (w - t)^2
   with constant target, so every aggregate update moves w the same way
   and we can count applied updates exactly. *)

open Octf_tensor
open Octf
module B = Builder
module Vs = Octf_nn.Var_store
module Sr = Octf_train.Sync_replicas

let scalar t = Tensor.flat_get_f t 0

let build mode num_workers =
  let b = B.create () in
  let store = Vs.create b in
  let w = Vs.get store ~init:Octf_nn.Init.zeros ~name:"w" [||] in
  let loss = B.square b (B.sub b w.Vs.read (B.const_f b 10.0)) in
  let coord = Sr.build store ~mode ~num_workers ~lr:0.25 ~loss () in
  let s = Session.create (B.graph b) in
  Session.run_unit s [ Vs.init_op store ];
  (s, store, w, coord)

let test_async_counts_steps () =
  let s, _store, w, coord = build Sr.Async 3 in
  let threads =
    List.init 3 (fun _ ->
        Thread.create
          (fun () ->
            for _ = 1 to 10 do
              Sr.worker_step coord s
            done)
          ())
  in
  List.iter Thread.join threads;
  Alcotest.(check int) "30 applied updates" 30 (Sr.global_step coord s);
  Alcotest.(check bool) "w moved toward target" true
    (scalar (List.hd (Session.run s [ w.Vs.read ])) > 5.0)

let run_sync_mode mode num_workers rounds =
  let s, _store, w, coord = build mode num_workers in
  Sr.start coord s;
  let threads =
    List.init num_workers (fun _ ->
        Thread.create
          (fun () ->
            let continue_ = ref true in
            while !continue_ do
              try Sr.worker_step coord s
              with Session.Run_error _ -> continue_ := false
            done)
          ())
  in
  for _ = 1 to rounds do
    Sr.chief_step coord s
  done;
  let gs = Sr.global_step coord s in
  let wv = scalar (List.hd (Session.run s [ w.Vs.read ])) in
  Sr.shutdown coord s;
  List.iter Thread.join threads;
  (gs, wv)

let test_sync_barrier_rounds () =
  let gs, wv = run_sync_mode Sr.Sync 3 5 in
  Alcotest.(check int) "5 aggregate updates" 5 gs;
  (* Each round: w += 0.25 * 2 * (10 - w); from 0: 5, 7.5, 8.75, ... *)
  Alcotest.(check (float 1e-4)) "deterministic trajectory" 9.6875 wv

let test_backup_mode_applies_m_of_n () =
  let gs, wv = run_sync_mode (Sr.Sync_backup { aggregate = 2 }) 3 4 in
  Alcotest.(check int) "4 rounds applied" 4 gs;
  (* Averaging m=2 identical gradients equals one: same trajectory. *)
  Alcotest.(check (float 1e-4)) "trajectory" 9.375 wv

let test_sync_determinism_matches_single () =
  (* A synchronous round averaging identical gradients must equal one
     plain SGD step. *)
  let gs, wv = run_sync_mode Sr.Sync 4 1 in
  Alcotest.(check int) "one round" 1 gs;
  Alcotest.(check (float 1e-5)) "like single sgd step" 5.0 wv

let test_backup_round_deadline_abandons () =
  (* Stale dropping + round abandonment (§4.4 turned around): the round
     deadline is one absolute budget, so a stale leftover dequeued along
     the way does not reset the clock, and a round that cannot fill
     closes with the fresh gradients it has. *)
  let s, _store, _w, coord = build (Sr.Sync_backup { aggregate = 2 }) 3 in
  Sr.start coord s;
  (* Round 0: all three workers enqueue tag-0 gradients; the chief
     consumes only two, so the third survives into round 1 stale. *)
  for _ = 1 to 3 do
    Sr.worker_step coord s
  done;
  Sr.chief_step coord s;
  Alcotest.(check int) "round 0 applied" 1 (Sr.global_step coord s);
  (* Round 1: one fresh gradient (tag 1) queued behind the stale
     leftover; the second never comes. *)
  Sr.worker_step coord s;
  let t0 = Unix.gettimeofday () in
  Sr.chief_step ~deadline:0.3 coord s;
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check int) "abandoned round applied" 2 (Sr.global_step coord s);
  Alcotest.(check bool) "one round budget, not per-dequeue" true
    (elapsed < 1.5);
  Sr.shutdown coord s

let test_build_validation () =
  let b = B.create () in
  let store = Vs.create b in
  let w = Vs.get store ~init:Octf_nn.Init.zeros ~name:"w" [||] in
  let loss = B.square b w.Vs.read in
  match
    Sr.build store ~mode:(Sr.Sync_backup { aggregate = 5 }) ~num_workers:3
      ~lr:0.1 ~loss ()
  with
  | _ -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "async counts steps" `Quick test_async_counts_steps;
    Alcotest.test_case "sync barrier rounds" `Quick test_sync_barrier_rounds;
    Alcotest.test_case "backup m-of-n" `Quick test_backup_mode_applies_m_of_n;
    Alcotest.test_case "sync equals single step" `Quick
      test_sync_determinism_matches_single;
    Alcotest.test_case "backup round deadline abandons" `Quick
      test_backup_round_deadline_abandons;
    Alcotest.test_case "build validation" `Quick test_build_validation;
  ]
