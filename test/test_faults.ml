(* Fault injection, deadlines, cancellation and checkpoint recovery
   (§4.3–4.4). Every test that arms the injector disarms it in a
   [Fun.protect] finally so a failure cannot poison later suites. *)

open Octf_tensor
open Octf
module B = Builder
module F = Fault_injector
module Vs = Octf_nn.Var_store

let scalar t = Tensor.flat_get_f t 0

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let with_faults ?seed specs f =
  F.install ?seed specs;
  Fun.protect ~finally:F.reset f

let fresh_prefix tag =
  let dir = Filename.temp_file ("octf-" ^ tag) "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Filename.concat dir "model"

(* ------------------------------------------------------------------ *)
(* Spec grammar                                                        *)
(* ------------------------------------------------------------------ *)

let test_spec_parsing () =
  let roundtrip s =
    match F.parse_spec s with
    | Ok spec -> Alcotest.(check string) s s (F.spec_to_string spec)
    | Error e -> Alcotest.fail e
  in
  roundtrip "kill:ps/0@40";
  roundtrip "kernel:MatMul@3";
  roundtrip "flaky:Apply:0.05";
  roundtrip "drop:grad@2";
  roundtrip "delay:grad@2:50";
  roundtrip "slow:reader@0:20";
  (match F.parse "kill:ps/0@1,flaky:MatMul:0.5" with
  | Ok [ F.Kill_task { job = "ps"; task = 0; step = 1 }; F.Flaky_kernel _ ] ->
      ()
  | Ok _ -> Alcotest.fail "wrong specs"
  | Error e -> Alcotest.fail e);
  match F.parse_spec "kill:nowhere" with
  | Ok _ -> Alcotest.fail "bad spec accepted"
  | Error e -> Alcotest.(check bool) "mentions grammar" true (contains e "kill:")

(* ------------------------------------------------------------------ *)
(* Injected kernel faults surface as structured errors                 *)
(* ------------------------------------------------------------------ *)

let test_kernel_fault_structured () =
  with_faults [ F.Fail_kernel { pattern = "MatMul"; step = 0 } ] @@ fun () ->
  let b = B.create () in
  let a = B.const b (Tensor.ones Dtype.F32 [| 2; 2 |]) in
  let m = B.matmul b a a in
  let s = Session.create (B.graph b) in
  (match Session.run s [ m ] with
  | _ -> Alcotest.fail "expected injected fault"
  | exception Session.Run_error f -> (
      (match f.Step_failure.cause with
      | Step_failure.Fault_injected _ -> ()
      | c ->
          Alcotest.failf "expected Fault_injected, got %s"
            (Step_failure.cause_message c));
      Alcotest.(check bool) "names the node" true (f.Step_failure.node <> None)));
  Alcotest.(check int) "counted" 1 (F.injections ());
  (* One-shot: the retry succeeds. *)
  Alcotest.(check (float 0.)) "retry succeeds" 2.0
    (scalar (List.hd (Session.run s [ m ])))

let test_flaky_determinism () =
  let count ~seed =
    with_faults ~seed [ F.Flaky_kernel { pattern = "MatMul"; prob = 0.3 } ]
    @@ fun () ->
    let b = B.create () in
    let a = B.const b (Tensor.ones Dtype.F32 [| 2; 2 |]) in
    let m = B.matmul b a a in
    let s = Session.create (B.graph b) in
    for _ = 1 to 40 do
      try ignore (Session.run s [ m ]) with Session.Run_error _ -> ()
    done;
    F.injections ()
  in
  let a = count ~seed:7 in
  Alcotest.(check bool) "some faults fired" true (a > 0 && a < 40);
  Alcotest.(check int) "same seed, same faults" a (count ~seed:7)

(* ------------------------------------------------------------------ *)
(* Rendezvous: duplicate send, abort, deadline                         *)
(* ------------------------------------------------------------------ *)

let test_duplicate_send_structured () =
  let r = Rendezvous.create () in
  let v = Value.Tensor (Tensor.scalar_f 1.0) in
  Rendezvous.send r ~key:"a;b;t" v;
  match Rendezvous.send r ~key:"a;b;t" v with
  | () -> Alcotest.fail "duplicate send accepted"
  | exception Step_failure.Error f -> (
      match f.Step_failure.cause with
      | Step_failure.Duplicate_send k -> Alcotest.(check string) "key" "a;b;t" k
      | c ->
          Alcotest.failf "expected Duplicate_send, got %s"
            (Step_failure.cause_message c))

let test_recv_after_abort () =
  let r = Rendezvous.create () in
  Rendezvous.abort r ~reason:"peer died";
  match Rendezvous.recv r ~key:"k" with
  | _ -> Alcotest.fail "recv succeeded after abort"
  | exception Rendezvous.Aborted reason ->
      Alcotest.(check string) "reason" "peer died" reason

let test_abort_wakes_blocked_recv () =
  let r = Rendezvous.create () in
  let result = ref `Pending in
  let th =
    Thread.create
      (fun () ->
        match Rendezvous.recv r ~key:"never" with
        | _ -> result := `Value
        | exception Rendezvous.Aborted _ -> result := `Aborted)
      ()
  in
  Thread.delay 0.05;
  Rendezvous.abort r ~reason:"test";
  Thread.join th;
  Alcotest.(check bool) "woken with Aborted" true (!result = `Aborted)

let test_recv_deadline () =
  let r = Rendezvous.create () in
  let cancel = Cancel.create ~deadline:0.05 () in
  Fun.protect ~finally:(fun () -> Cancel.complete cancel) @@ fun () ->
  let t0 = Unix.gettimeofday () in
  match Rendezvous.recv ~cancel r ~key:"never" with
  | _ -> Alcotest.fail "recv produced a value"
  | exception Step_failure.Error f ->
      (match f.Step_failure.cause with
      | Step_failure.Deadline_exceeded _ -> ()
      | c ->
          Alcotest.failf "expected Deadline_exceeded, got %s"
            (Step_failure.cause_message c));
      Alcotest.(check bool) "woke promptly" true
        (Unix.gettimeofday () -. t0 < 2.0)

(* ------------------------------------------------------------------ *)
(* Queues: cancellation and close wake blocked waiters                 *)
(* ------------------------------------------------------------------ *)

let test_queue_cancel_wakes_dequeue () =
  let q =
    Queue_impl.create ~name:"q" ~capacity:2 ~num_components:1 ()
  in
  let cancel = Cancel.create () in
  let result = ref `Pending in
  let th =
    Thread.create
      (fun () ->
        match Queue_impl.dequeue ~cancel q with
        | _ -> result := `Value
        | exception Step_failure.Error _ -> result := `Cancelled)
      ()
  in
  Thread.delay 0.05;
  Cancel.cancel cancel ~reason:"peer failed";
  Thread.join th;
  Alcotest.(check bool) "dequeue woken" true (!result = `Cancelled)

let test_queue_cancel_wakes_enqueue () =
  let q =
    Queue_impl.create ~name:"q" ~capacity:1 ~num_components:1 ()
  in
  Queue_impl.enqueue q [| Tensor.scalar_f 0.0 |];
  let cancel = Cancel.create ~deadline:0.05 () in
  Fun.protect ~finally:(fun () -> Cancel.complete cancel) @@ fun () ->
  match Queue_impl.enqueue ~cancel q [| Tensor.scalar_f 1.0 |] with
  | () -> Alcotest.fail "enqueue succeeded on a full queue"
  | exception Step_failure.Error f -> (
      match f.Step_failure.cause with
      | Step_failure.Deadline_exceeded _ -> ()
      | c ->
          Alcotest.failf "expected Deadline_exceeded, got %s"
            (Step_failure.cause_message c))

(* Regression: a waiter that observes deadline expiry synchronously
   ([Cancel.check] polled inside the queue's critical section) must not
   fire wakers from its own thread — its registered waker relocks the
   queue mutex it already holds. It only sets the cause; the watchdog
   fires the wakers, including for peers parked on other queues. *)
let test_sync_deadline_poll_in_queue_wait () =
  let q1 = Queue_impl.create ~name:"q1" ~capacity:1 ~num_components:1 () in
  let q2 = Queue_impl.create ~name:"q2" ~capacity:1 ~num_components:1 () in
  (* Deterministic half: the deadline has already lapsed when the
     dequeue takes the queue lock, so the very first poll detects it. *)
  let expired = Cancel.create ~deadline:0.0 () in
  Fun.protect ~finally:(fun () -> Cancel.complete expired) @@ fun () ->
  (match Queue_impl.dequeue ~cancel:expired q1 with
  | _ -> Alcotest.fail "dequeue on empty queue produced a value"
  | exception Step_failure.Error f -> (
      match f.Step_failure.cause with
      | Step_failure.Deadline_exceeded _ -> ()
      | c ->
          Alcotest.failf "expected Deadline_exceeded, got %s"
            (Step_failure.cause_message c)));
  (* Racy half: a peer parks on q2 before the deadline lapses; the main
     thread polls on q1 right around expiry, racing the watchdog for
     detection. Whoever wins, neither thread may crash or stay parked. *)
  let cancel = Cancel.create ~deadline:0.05 () in
  Fun.protect ~finally:(fun () -> Cancel.complete cancel) @@ fun () ->
  let peer_result = ref `Pending in
  let peer =
    Thread.create
      (fun () ->
        match Queue_impl.dequeue ~cancel q2 with
        | _ -> peer_result := `Value
        | exception Step_failure.Error f ->
            peer_result := `Failure f.Step_failure.cause
        | exception e -> peer_result := `Other (Printexc.to_string e))
      ()
  in
  Thread.delay 0.05;
  (match Queue_impl.dequeue ~cancel q1 with
  | _ -> Alcotest.fail "dequeue on empty queue produced a value"
  | exception Step_failure.Error f -> (
      match f.Step_failure.cause with
      | Step_failure.Deadline_exceeded _ -> ()
      | c ->
          Alcotest.failf "expected Deadline_exceeded, got %s"
            (Step_failure.cause_message c)));
  Thread.join peer;
  match !peer_result with
  | `Failure (Step_failure.Deadline_exceeded _) -> ()
  | `Value -> Alcotest.fail "peer dequeue produced a value"
  | `Pending -> Alcotest.fail "peer never woke"
  | `Failure c ->
      Alcotest.failf "peer: expected Deadline_exceeded, got %s"
        (Step_failure.cause_message c)
  | `Other e -> Alcotest.failf "peer raised %s" e

let test_close_wakes_all_waiters () =
  let q =
    Queue_impl.create ~name:"q" ~capacity:4 ~num_components:1 ()
  in
  let woken = Atomic.make 0 in
  let threads =
    List.init 3 (fun _ ->
        Thread.create
          (fun () ->
            match Queue_impl.dequeue q with
            | _ -> ()
            | exception Queue_impl.Closed _ -> Atomic.incr woken)
          ())
  in
  Thread.delay 0.05;
  Queue_impl.close q;
  List.iter Thread.join threads;
  Alcotest.(check int) "all dequeue waiters woken" 3 (Atomic.get woken)

let test_dequeue_many_requeues_on_close () =
  let q =
    Queue_impl.create ~name:"q" ~capacity:8 ~num_components:1 ()
  in
  Queue_impl.enqueue q [| Tensor.scalar_f 1.0 |];
  Queue_impl.enqueue q [| Tensor.scalar_f 2.0 |];
  let result = ref `Pending in
  let th =
    Thread.create
      (fun () ->
        match Queue_impl.dequeue_many q 4 with
        | _ -> result := `Value
        | exception Queue_impl.Closed _ -> result := `Closed)
      ()
  in
  Thread.delay 0.05;
  Queue_impl.close q;
  Thread.join th;
  Alcotest.(check bool) "dequeue_many observed close" true (!result = `Closed);
  (* The two taken elements went back: a failed step loses no data. *)
  Alcotest.(check int) "elements requeued" 2 (Queue_impl.size q);
  Alcotest.(check (float 0.)) "order preserved" 1.0
    (scalar (Queue_impl.dequeue q).(0))

(* ------------------------------------------------------------------ *)
(* Deadlines on whole steps, cyclic graphs, lost sends                 *)
(* ------------------------------------------------------------------ *)

let infinite_loop_graph () =
  let b = B.create () in
  let i0 = B.const_f b 0.0 in
  let limit = B.const_f b 1e18 in
  let results =
    B.while_loop b ~invariants:[ limit ]
      ~cond:(fun b vars ->
        match vars with
        | [ i; lim ] -> B.less b i lim
        | _ -> assert false)
      ~body:(fun b vars ->
        match vars with
        | [ i; _lim ] -> [ B.add b i (B.ones_like b i) ]
        | _ -> assert false)
      [ i0 ]
  in
  (b, List.hd results)

let check_deadline_on_cyclic scheduler () =
  let b, out = infinite_loop_graph () in
  let s = Session.create ~scheduler ~optimize:false (B.graph b) in
  let t0 = Unix.gettimeofday () in
  match Session.run ~deadline:0.15 s [ out ] with
  | _ -> Alcotest.fail "unbounded loop terminated"
  | exception Session.Run_error f ->
      (match f.Step_failure.cause with
      | Step_failure.Deadline_exceeded budget ->
          Alcotest.(check (float 1e-9)) "budget reported" 0.15 budget
      | c ->
          Alcotest.failf "expected Deadline_exceeded, got %s"
            (Step_failure.cause_message c));
      Alcotest.(check bool) "failed promptly, not hung" true
        (Unix.gettimeofday () -. t0 < 5.0)

let test_dropped_send_rescued_by_deadline () =
  let c =
    Cluster.create
      ~jobs:[ ("ps", 1, [ Device.CPU ]); ("worker", 1, [ Device.CPU ]) ]
  in
  let b = B.create () in
  let w =
    B.variable b ~name:"w" ~device:"/job:ps/task:0" ~dtype:Dtype.F32
      ~shape:[||] ()
  in
  let init = B.assign b w (B.const_f b 3.0) in
  let r = B.read b w in
  let total =
    B.with_device b "/job:worker/task:0" (fun () ->
        B.add b r (B.const_f b 1.0))
  in
  let s = Cluster.session c (B.graph b) in
  Session.run_unit s [ init ];
  (* Swallow the first cross-task send: the worker's Recv never fires
     and only the deadline rescues the step. *)
  with_faults [ F.Drop_send { pattern = ";"; step = 0 } ] @@ fun () ->
  (match Session.run ~deadline:0.2 s [ total ] with
  | _ -> Alcotest.fail "step succeeded despite dropped send"
  | exception Session.Run_error f -> (
      match f.Step_failure.cause with
      | Step_failure.Deadline_exceeded _ -> ()
      | c ->
          Alcotest.failf "expected Deadline_exceeded, got %s"
            (Step_failure.cause_message c)));
  (* The drop was one-shot; the session is reusable afterwards. *)
  Alcotest.(check (float 0.)) "next step delivers" 4.0
    (scalar (List.hd (Session.run s [ total ])))

(* ------------------------------------------------------------------ *)
(* Pipelined steps against a persistent straggler                      *)
(* ------------------------------------------------------------------ *)

(* A slow:<pattern> spec makes every matching kernel a straggler. With
   K = 4 steps in flight the straggles overlap, so a per-step deadline
   that comfortably covers one straggle passes for all steps, the
   fetches stay exact, and the whole batch finishes in well under the
   serialized time. A deadline shorter than the straggle fails with a
   structured Deadline_exceeded. *)
let test_pipelined_slow_reader () =
  with_faults
    [ F.Slow_kernel { pattern = "slow_reader"; step = 0; ms = 30.0 } ]
  @@ fun () ->
  let b = B.create () in
  let x = B.const b (Tensor.ones Dtype.F32 [| 4; 4 |]) in
  let slow = B.identity b ~name:"slow_reader" x in
  let out = B.reduce_sum b (B.add b slow slow) in
  (* Optimizations off: constant folding would erase the named
     slow_reader node (its input is a Const), and with it the straggle
     this test is about. *)
  let s = Session.create ~optimize:false ~max_in_flight:4 (B.graph b) in
  (* Warm-up pays plan compilation (and one straggle). *)
  ignore (Session.run s [ out ]);
  let n = 8 in
  let t0 = Unix.gettimeofday () in
  let options = Session.Run_options.v ~deadline:1.0 () in
  let handles = List.init n (fun _ -> Session.run_async ~options s [ out ]) in
  List.iter
    (fun h ->
      match Session.wait h with
      | [ t ], _ -> Alcotest.(check (float 0.)) "exact fetch" 32.0 (scalar t)
      | _ -> Alcotest.fail "wrong arity")
    handles;
  let wall = Unix.gettimeofday () -. t0 in
  let serialized = float_of_int n *. 0.030 in
  Alcotest.(check bool)
    (Printf.sprintf "straggles overlapped (%.0f ms < %.0f ms serial)"
       (1000. *. wall) (1000. *. serialized))
    true
    (wall < 0.8 *. serialized);
  (* A 5 ms deadline cannot survive a 30 ms straggler: the watchdog
     cancels mid-straggle and the step fails structurally. *)
  let tight = Session.Run_options.v ~deadline:0.005 () in
  match Session.wait (Session.run_async ~options:tight s [ out ]) with
  | _ -> Alcotest.fail "expected a deadline failure"
  | exception Session.Run_error f -> (
      match f.Step_failure.cause with
      | Step_failure.Deadline_exceeded _ -> ()
      | c ->
          Alcotest.failf "wrong cause: %s" (Step_failure.cause_message c))

(* ------------------------------------------------------------------ *)
(* Recovery: supervisor resumes from the latest checkpoint             *)
(* ------------------------------------------------------------------ *)

let test_supervisor_resumes_from_checkpoint () =
  with_faults [ F.Fail_kernel { pattern = "AssignAdd"; step = 12 } ]
  @@ fun () ->
  let b = B.create () in
  let store = Vs.create b in
  let w = Vs.get store ~init:Octf_nn.Init.zeros ~name:"acc" [||] in
  let bump = B.assign_add b w.Vs.handle (B.const_f b 1.0) in
  let s = Session.create (B.graph b) in
  let saver = Octf_train.Saver.create store in
  let prefix = fresh_prefix "sup" in
  let failures = ref 0 and restores = ref 0 in
  let sup =
    Octf_train.Supervisor.create ~save_every:5 ~backoff:0.001
      ~on_event:(function
        | Octf_train.Supervisor.Step_failed _ -> incr failures
        | Octf_train.Supervisor.Restored _ -> incr restores
        | _ -> ())
      ~saver ~prefix s
  in
  let stats =
    Octf_train.Supervisor.run sup ~steps:20
      ~init:(fun () -> Session.run_unit s [ Vs.init_op store ])
      (fun ~step:_ ~deadline:_ -> Session.run_unit s [ bump ])
  in
  Alcotest.(check int) "one failure" 1 !failures;
  Alcotest.(check int) "one restore" 1 !restores;
  Alcotest.(check bool) "checkpointed" true
    (stats.Octf_train.Supervisor.checkpoints > 0);
  (* Restoring rolled the accumulator back to the checkpointed step, so
     re-run steps are not double counted. *)
  Alcotest.(check (float 0.)) "value consistent with step count" 20.0
    (scalar (List.hd (Session.run s [ w.Vs.read ])))

(* The acceptance demo: a parameter-server task dies mid-training; the
   step fails with a structured error within the deadline, the
   supervisor restarts the task and restores the latest checkpoint, and
   training converges to the fault-free optimum. *)
let test_ps_kill_recovery_converges () =
  let run_training ~faulty =
    let c =
      Cluster.create
        ~jobs:[ ("ps", 1, [ Device.CPU ]); ("worker", 1, [ Device.CPU ]) ]
    in
    let b = B.create () in
    let store = Vs.create b in
    let w =
      Vs.get store ~device:"/job:ps/task:0" ~init:Octf_nn.Init.zeros
        ~name:"w" [||]
    in
    (* Minimize (w - 4)^2 with the gradient computed on the worker. *)
    let grad =
      B.with_device b "/job:worker/task:0" (fun () ->
          B.mul b (B.sub b w.Vs.read (B.const_f b 4.0)) (B.const_f b 2.0))
    in
    let update = B.assign_sub b w.Vs.handle (B.mul b grad (B.const_f b 0.1)) in
    let s = Cluster.session c (B.graph b) in
    let saver = Octf_train.Saver.create store in
    let prefix = fresh_prefix "psk" in
    let seen_failure = ref None in
    let sup =
      Octf_train.Supervisor.create ~save_every:10 ~backoff:0.001
        ~deadline:2.0
        ~on_event:(function
          | Octf_train.Supervisor.Step_failed (_, f) -> seen_failure := Some f
          | _ -> ())
        ~on_recover:(fun _ ->
          (* Bring the dead task back with empty memory, as a process
             restart would (§4.3); init + restore rebuild its state. *)
          List.iter
            (fun (job, task) ->
              F.revive_task ~job ~task;
              Cluster.restart_task c ~job ~task)
            (F.killed_tasks ()))
        ~saver ~prefix s
    in
    if faulty then
      F.install [ F.Kill_task { job = "ps"; task = 0; step = 25 } ];
    Fun.protect ~finally:F.reset @@ fun () ->
    let stats =
      Octf_train.Supervisor.run sup ~steps:60
        ~init:(fun () -> Session.run_unit s [ Vs.init_op store ])
        (fun ~step:_ ~deadline -> Session.run_unit ?deadline s [ update ])
    in
    let final = scalar (List.hd (Session.run s [ w.Vs.read ])) in
    (final, stats, !seen_failure)
  in
  let clean, _, no_failure = run_training ~faulty:false in
  Alcotest.(check bool) "fault-free run saw no failure" true
    (no_failure = None);
  let faulty, stats, failure = run_training ~faulty:true in
  (match failure with
  | None -> Alcotest.fail "injected kill never surfaced"
  | Some f -> (
      match f.Step_failure.cause with
      | Step_failure.Fault_injected msg ->
          Alcotest.(check bool) "names the dead task" true
            (contains msg "/job:ps/task:0")
      | Step_failure.Rendezvous_aborted msg | Step_failure.Cancelled msg ->
          Alcotest.failf "collateral error won over root cause: %s" msg
      | c ->
          Alcotest.failf "expected Fault_injected, got %s"
            (Step_failure.cause_message c)));
  Alcotest.(check bool) "restored from checkpoint" true
    (stats.Octf_train.Supervisor.restores >= 1);
  Alcotest.(check bool) "training survived and converged" true
    (Float.abs (faulty -. clean) < 0.2);
  Alcotest.(check (float 0.3)) "reaches the optimum" 4.0 faulty

(* ------------------------------------------------------------------ *)
(* Cluster surface                                                     *)
(* ------------------------------------------------------------------ *)

let test_restart_task_clears_state () =
  let c = Cluster.create ~jobs:[ ("ps", 1, [ Device.CPU ]) ] in
  let res = Cluster.task_resources c ~job:"ps" ~task:0 in
  ignore
    (Resource_manager.find_or_create res "v" (fun () ->
         Resource.Variable
           (Resource.make_variable ~name:"v" ~dtype:Dtype.F32 ~shape:[||])));
  Alcotest.(check bool) "variable present" true
    (Resource_manager.find res "v" <> None);
  Cluster.restart_task c ~job:"ps" ~task:0;
  Alcotest.(check bool) "memory lost on restart" true
    (Resource_manager.find res "v" = None);
  match Cluster.restart_task c ~job:"ps" ~task:9 with
  | () -> Alcotest.fail "restarted a task that does not exist"
  | exception Step_failure.Error f -> (
      match f.Step_failure.cause with
      | Step_failure.Missing_task msg ->
          Alcotest.(check bool) "names it" true (contains msg "/job:ps/task:9")
      | c ->
          Alcotest.failf "expected Missing_task, got %s"
            (Step_failure.cause_message c))

let suite =
  [
    Alcotest.test_case "fault spec grammar" `Quick test_spec_parsing;
    Alcotest.test_case "kernel fault is structured" `Quick
      test_kernel_fault_structured;
    Alcotest.test_case "flaky faults are seeded" `Quick test_flaky_determinism;
    Alcotest.test_case "duplicate send is structured" `Quick
      test_duplicate_send_structured;
    Alcotest.test_case "recv after abort" `Quick test_recv_after_abort;
    Alcotest.test_case "abort wakes blocked recv" `Quick
      test_abort_wakes_blocked_recv;
    Alcotest.test_case "recv honours deadline" `Quick test_recv_deadline;
    Alcotest.test_case "cancel wakes blocked dequeue" `Quick
      test_queue_cancel_wakes_dequeue;
    Alcotest.test_case "polled deadline in queue wait" `Quick
      test_sync_deadline_poll_in_queue_wait;
    Alcotest.test_case "deadline wakes blocked enqueue" `Quick
      test_queue_cancel_wakes_enqueue;
    Alcotest.test_case "close wakes all waiters" `Quick
      test_close_wakes_all_waiters;
    Alcotest.test_case "dequeue_many requeues on close" `Quick
      test_dequeue_many_requeues_on_close;
    Alcotest.test_case "deadline on cyclic graph (inline)" `Quick
      (check_deadline_on_cyclic Scheduler.Inline);
    Alcotest.test_case "deadline on cyclic graph (pool)" `Quick
      (check_deadline_on_cyclic Scheduler.Pool);
    Alcotest.test_case "pipelined steps overlap a slow reader" `Quick
      test_pipelined_slow_reader;
    Alcotest.test_case "dropped send rescued by deadline" `Quick
      test_dropped_send_rescued_by_deadline;
    Alcotest.test_case "supervisor resumes from checkpoint" `Quick
      test_supervisor_resumes_from_checkpoint;
    Alcotest.test_case "ps kill: recover and converge" `Quick
      test_ps_kill_recovery_converges;
    Alcotest.test_case "restart_task clears state" `Quick
      test_restart_task_clears_state;
  ]
