(* Elementwise kernel fusion (Graph_optimizer.Fuse). The contract:
   fused execution is bit-identical to unfused, whole chains collapse
   into single FusedElementwise kernels visible in the step stats, and
   fetch/control/multi-consumer boundaries are respected.

   Every session here passes its pipeline (or the [fusion] knob)
   explicitly, so the suite behaves identically under the CI legs that
   set OCTF_FUSION. Graphs are rebuilt per session because optimizer
   passes rewrite the graph in place at compile time. *)

open Octf_tensor
open Octf
module B = Builder

let fused_passes = [ Graph_optimizer.Fuse; Graph_optimizer.Prune ]

let run_stats ?passes ?optimize ?memory_planning ~feeds b fetches =
  let s = Session.create ?passes ?optimize ?memory_planning (B.graph b) in
  let options = Session.Run_options.v ~feeds ~collect_stats:true () in
  let fetched, md = Session.run_with_metadata ~options s fetches in
  (fetched, Option.get md.Session.Run_metadata.step_stats)

let count_op stats op =
  List.length
    (List.filter (fun ns -> ns.Step_stats.op_type = op) stats.Step_stats.nodes)

let check_identical msg expected got =
  Alcotest.(check bool) msg true (List.for_all2 Tensor.equal expected got)

let feed_x () =
  Tensor.uniform (Rng.create 5) [| 64 |] ~lo:(-2.0) ~hi:2.0

(* neg -> mul(const) -> relu -> sigmoid -> tanh under a fetched
   ReduceSum: the whole 5-op chain is one group. *)
let build_chain () =
  let b = B.create () in
  let x = B.placeholder b Dtype.F32 in
  let y =
    B.reduce_sum b
      (B.tanh b
         (B.sigmoid b (B.relu b (B.mul b (B.neg b x) (B.const_f b 0.5)))))
  in
  (b, x, y)

let test_chain_collapses () =
  let feeds _b x = [ (x, feed_x ()) ] in
  let b1, x1, y1 = build_chain () in
  let expected, plain =
    run_stats ~optimize:false ~feeds:(feeds b1 x1) b1 [ y1 ]
  in
  let groups_before =
    Option.value ~default:0.0
      (Metrics.find_value Metrics.default "octf_fusion_groups_total")
  in
  let b2, x2, y2 = build_chain () in
  let got, fused = run_stats ~passes:fused_passes ~feeds:(feeds b2 x2) b2 [ y2 ] in
  check_identical "fused run bit-identical" expected got;
  Alcotest.(check int) "one fused kernel" 1 (count_op fused "FusedElementwise");
  List.iter
    (fun op ->
      Alcotest.(check int) (op ^ " absorbed") 0 (count_op fused op))
    [ "Neg"; "Mul"; "Relu"; "Sigmoid"; "Tanh" ];
  (* The unfused leg ran all five elementwise kernels. *)
  Alcotest.(check int) "unfused ran the chain" 5
    (count_op plain "Neg" + count_op plain "Mul" + count_op plain "Relu"
   + count_op plain "Sigmoid" + count_op plain "Tanh");
  (* Step stats report the group: one entry, five originals. *)
  (match Step_stats.fusion_groups fused with
  | [ (name, n, _) ] ->
      Alcotest.(check bool) "group name" true
        (String.length name > 0);
      Alcotest.(check int) "group size" 5 n
  | gs -> Alcotest.failf "expected one fusion group, got %d" (List.length gs));
  let groups_after =
    Option.value ~default:0.0
      (Metrics.find_value Metrics.default "octf_fusion_groups_total")
  in
  Alcotest.(check bool) "fusion group counter bumped" true
    (groups_after > groups_before)

(* Fused execution must agree with unfused whether the memory planner
   (and its in-place grants to the fused kernel) is on or off. *)
let test_planning_on_off () =
  let feeds _b x = [ (x, feed_x ()) ] in
  let b1, x1, y1 = build_chain () in
  let expected, _ = run_stats ~optimize:false ~feeds:(feeds b1 x1) b1 [ y1 ] in
  List.iter
    (fun planning ->
      let b2, x2, y2 = build_chain () in
      let got, _ =
        run_stats ~passes:fused_passes ~memory_planning:planning
          ~feeds:(feeds b2 x2) b2 [ y2 ]
      in
      check_identical
        (Printf.sprintf "planning=%b bit-identical" planning)
        expected got)
    [ false; true ]

(* AddN joins a group as the left fold of binary Adds its kernel
   computes, with broadcasting ([3] row against [2;3]) in the fold. *)
let test_addn_broadcast_group () =
  let build () =
    let b = B.create () in
    let x = B.placeholder b Dtype.F32 in
    let r =
      B.const b (Tensor.of_float_array [| 3 |] [| 0.5; -1.5; 2.0 |])
    in
    let y = B.reduce_sum b (B.relu b (B.add_n b [ x; r; x ])) in
    (b, x, y)
  in
  let xt =
    Tensor.of_float_array [| 2; 3 |] [| 1.0; -2.0; 3.0; -4.0; 5.0; -6.0 |]
  in
  let b1, x1, y1 = build () in
  let expected, _ = run_stats ~optimize:false ~feeds:[ (x1, xt) ] b1 [ y1 ] in
  let b2, x2, y2 = build () in
  let got, fused = run_stats ~passes:fused_passes ~feeds:[ (x2, xt) ] b2 [ y2 ] in
  check_identical "broadcasting AddN group bit-identical" expected got;
  Alcotest.(check int) "one fused kernel" 1 (count_op fused "FusedElementwise");
  Alcotest.(check int) "AddN absorbed" 0 (count_op fused "AddN");
  Alcotest.(check int) "Relu absorbed" 0 (count_op fused "Relu")

(* Integer dtype: binary results truncate through int between ops
   (I32 division included); fused and unfused must agree bit-for-bit,
   including the buffer representation Tensor.equal compares. The chain
   is binary-only — standalone unary kernels reject Int_buf tensors, so
   that is the int path that exists to be bit-identical with. *)
let test_int_chain () =
  let build () =
    let b = B.create () in
    let x =
      B.const b (Tensor.of_int_array [| 6 |] [| -7; -3; 0; 1; 5; 9 |])
    in
    let c1 = B.const b (Tensor.scalar_i 2) in
    let c2 = B.const b (Tensor.scalar_i 2) in
    let c3 = B.const b (Tensor.scalar_i 3) in
    let y =
      B.cast b (B.mul b (B.div b (B.add b x c1) c2) c3) Dtype.F32
    in
    (b, y)
  in
  let b1, y1 = build () in
  let expected, _ = run_stats ~optimize:false ~feeds:[] b1 [ y1 ] in
  let b2, y2 = build () in
  let got, fused = run_stats ~passes:fused_passes ~feeds:[] b2 [ y2 ] in
  check_identical "int chain bit-identical" expected got;
  Alcotest.(check int) "one fused kernel" 1 (count_op fused "FusedElementwise")

(* A producer with two consumers is never recomputed per consumer: it
   stays out of its consumers' groups and roots its own. *)
let test_multi_consumer_boundary () =
  let build () =
    let b = B.create () in
    let x = B.placeholder b Dtype.F32 in
    let u = B.neg b (B.square b x) in
    let s1 = B.reduce_sum b (B.relu b u) in
    let s2 = B.reduce_sum b (B.exp b u) in
    (b, x, s1, s2)
  in
  let feeds x = [ (x, feed_x ()) ] in
  let b1, x1, a1, a2 = build () in
  let expected, _ = run_stats ~optimize:false ~feeds:(feeds x1) b1 [ a1; a2 ] in
  let b2, x2, c1, c2 = build () in
  let got, fused =
    run_stats ~passes:fused_passes ~feeds:(feeds x2) b2 [ c1; c2 ]
  in
  check_identical "diamond bit-identical" expected got;
  (* Only {neg, square} fuse; relu and exp each read the shared value. *)
  Alcotest.(check int) "one fused kernel" 1 (count_op fused "FusedElementwise");
  Alcotest.(check int) "Relu kept" 1 (count_op fused "Relu");
  Alcotest.(check int) "Exp kept" 1 (count_op fused "Exp");
  match Step_stats.fusion_groups fused with
  | [ (_, n, _) ] -> Alcotest.(check int) "group size" 2 n
  | gs -> Alcotest.failf "expected one fusion group, got %d" (List.length gs)

(* Control edges anchor to real nodes: a node with control inputs never
   fuses, and neither does a producer some other node control-depends
   on. *)
let test_control_dependency_boundary () =
  let build () =
    let b = B.create () in
    let x = B.placeholder b Dtype.F32 in
    let p = B.sigmoid b x in
    let q = B.reduce_sum b (B.tanh b p) in
    (* r runs strictly after p, and carries the control edge itself. *)
    let r =
      B.with_control_dependencies b [ p ] (fun () ->
          B.reduce_sum b (B.square b x))
    in
    (b, x, q, r)
  in
  let feeds x = [ (x, feed_x ()) ] in
  let b1, x1, q1, r1 = build () in
  let expected, _ = run_stats ~optimize:false ~feeds:(feeds x1) b1 [ q1; r1 ] in
  let b2, x2, q2, r2 = build () in
  let got, fused =
    run_stats ~passes:fused_passes ~feeds:(feeds x2) b2 [ q2; r2 ]
  in
  check_identical "control graph bit-identical" expected got;
  (* tanh cannot absorb the control-depended-on sigmoid; the square
     carries a control input and cannot fuse either. *)
  Alcotest.(check int) "no fusion across control edges" 0
    (count_op fused "FusedElementwise");
  Alcotest.(check int) "Sigmoid kept" 1 (count_op fused "Sigmoid")

(* A fetched node must still materialize: it never joins a group, even
   mid-chain. *)
let test_fetched_interior_kept () =
  let build () =
    let b = B.create () in
    let x = B.placeholder b Dtype.F32 in
    let mid = B.relu b (B.neg b x) in
    let top = B.reduce_sum b (B.exp b mid) in
    (b, x, mid, top)
  in
  let feeds x = [ (x, feed_x ()) ] in
  let b1, x1, m1, t1 = build () in
  let expected, _ = run_stats ~optimize:false ~feeds:(feeds x1) b1 [ m1; t1 ] in
  let b2, x2, m2, t2 = build () in
  let got, fused =
    run_stats ~passes:fused_passes ~feeds:(feeds x2) b2 [ m2; t2 ]
  in
  check_identical "fetched-interior bit-identical" expected got;
  (* relu is fetched, so exp cannot absorb it; relu itself is pinned and
     cannot root a group over neg. *)
  Alcotest.(check int) "fetched relu kept" 1 (count_op fused "Relu")

(* The Session [fusion] knob selects between the pipelines; results are
   bit-identical either way. *)
let test_session_knob () =
  let feeds _b x = [ (x, feed_x ()) ] in
  let run fusion =
    let b, x, y = build_chain () in
    let s = Session.create ~fusion (B.graph b) in
    let options =
      Session.Run_options.v ~feeds:(feeds b x) ~collect_stats:true ()
    in
    let fetched, md = Session.run_with_metadata ~options s [ y ] in
    (fetched, Option.get md.Session.Run_metadata.step_stats)
  in
  let off, off_stats = run false in
  let on, on_stats = run true in
  check_identical "knob legs bit-identical" off on;
  Alcotest.(check int) "fusion off: no fused kernels" 0
    (count_op off_stats "FusedElementwise");
  Alcotest.(check bool) "fusion on: fused kernel present" true
    (count_op on_stats "FusedElementwise" >= 1)

let suite =
  [
    Alcotest.test_case "chain collapses to one kernel" `Quick
      test_chain_collapses;
    Alcotest.test_case "planning on/off bit-identical" `Quick
      test_planning_on_off;
    Alcotest.test_case "AddN with broadcasting fuses" `Quick
      test_addn_broadcast_group;
    Alcotest.test_case "int dtype chain bit-identical" `Quick test_int_chain;
    Alcotest.test_case "multi-consumer producer boundary" `Quick
      test_multi_consumer_boundary;
    Alcotest.test_case "control dependency boundary" `Quick
      test_control_dependency_boundary;
    Alcotest.test_case "fetched interior stays materialized" `Quick
      test_fetched_interior_kept;
    Alcotest.test_case "session fusion knob" `Quick test_session_knob;
  ]
