(* Control flow and dead-value semantics (§3.4). *)

open Octf_tensor
open Octf
module B = Builder

let scalar t = Tensor.flat_get_f t 0

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let run1 ?(optimize = false) b fetch feeds =
  let s = Session.create ~optimize (B.graph b) in
  match Session.run ~feeds s [ fetch ] with
  | [ v ] -> scalar v
  | _ -> Alcotest.fail "arity"

let test_switch_dead_propagation () =
  (* The untaken Switch branch is dead and poisons downstream nodes; a
     fetch of a dead value errors. *)
  let b = B.create () in
  let pred = B.const b (Tensor.scalar_b true) in
  let x = B.const_f b 1.0 in
  let f, t = B.switch b x pred in
  let dead_side = B.neg b f in
  let live_side = B.neg b t in
  let s = Session.create ~optimize:false (B.graph b) in
  (match Session.run s [ live_side ] with
  | [ v ] -> Alcotest.(check (float 0.)) "live" (-1.0) (scalar v)
  | _ -> Alcotest.fail "arity");
  match Session.run s [ dead_side ] with
  | _ -> Alcotest.fail "expected dead fetch error"
  | exception Session.Run_error _ -> ()

let test_merge_takes_live () =
  let b = B.create () in
  let pred = B.const b (Tensor.scalar_b false) in
  let x = B.const_f b 5.0 in
  let f, t = B.switch b x pred in
  let merged = B.merge b [ B.neg b f; B.mul b t (B.const_f b 100.0) ] in
  Alcotest.(check (float 0.)) "false branch survives" (-5.0)
    (run1 b merged [])

let test_dead_through_control_edge () =
  (* A node control-dependent on a dead node dies too. *)
  let b = B.create () in
  let pred = B.const b (Tensor.scalar_b true) in
  let x = B.const_f b 1.0 in
  let f, _t = B.switch b x pred in
  (* Control deadness is node-level: depend on an Identity of the dead
     branch, not on the (always partially live) Switch node itself. *)
  let fid = B.identity b f in
  let gated =
    B.op b
      ~control_inputs:[ fid ]
      ~op_type:"Const"
      ~attrs:[ ("value", Attr.Tensor (Tensor.scalar_f 3.0)) ]
      []
  in
  let s = Session.create ~optimize:false (B.graph b) in
  match Session.run s [ B.output gated ] with
  | _ -> Alcotest.fail "expected dead"
  | exception Session.Run_error _ -> ()

let test_nested_cond () =
  let b = B.create () in
  let p1 = B.placeholder b Dtype.Bool in
  let p2 = B.placeholder b Dtype.Bool in
  let x = B.const_f b 1.0 in
  let result =
    B.cond b p1 ~inputs:[ x ]
      ~then_:(fun b ins ->
        B.cond b p2 ~inputs:ins
          ~then_:(fun b ins -> [ B.mul b (List.hd ins) (B.const_f b 10.0) ])
          ~else_:(fun b ins -> [ B.mul b (List.hd ins) (B.const_f b 20.0) ]))
      ~else_:(fun b ins -> [ B.neg b (List.hd ins) ])
  in
  let out = List.hd result in
  let s = Session.create ~optimize:false (B.graph b) in
  let run p1v p2v =
    match
      Session.run
        ~feeds:[ (p1, Tensor.scalar_b p1v); (p2, Tensor.scalar_b p2v) ]
        s [ out ]
    with
    | [ v ] -> scalar v
    | _ -> Alcotest.fail "arity"
  in
  Alcotest.(check (float 0.)) "tt" 10.0 (run true true);
  Alcotest.(check (float 0.)) "tf" 20.0 (run true false);
  Alcotest.(check (float 0.)) "ft" (-1.0) (run false true)

let test_while_loop_multiple_vars () =
  (* Fibonacci via a two-variable loop. *)
  let b = B.create () in
  let a0 = B.const_f b 0.0 and b0 = B.const_f b 1.0 in
  let i0 = B.const_f b 0.0 in
  let limit = B.const_f b 9.5 in
  let results =
    B.while_loop b ~invariants:[ limit ]
      ~cond:(fun b vars ->
        match vars with
        | [ i; _; _; lim ] -> B.less b i lim
        | _ -> assert false)
      ~body:(fun b vars ->
        match vars with
        | [ i; x; y; _lim ] ->
            [ B.add b i (B.ones_like b i); y; B.add b x y ]
        | _ -> assert false)
      [ i0; a0; b0 ]
  in
  let fib = List.nth results 1 in
  Alcotest.(check (float 0.)) "fib(10)" 55.0 (run1 b fib [])

let test_nested_while () =
  (* sum_{i=1..3} sum_{j=1..i} 1 = 6, via nested loops. *)
  let b = B.create () in
  let i0 = B.const_f b 1.0 and total0 = B.const_f b 0.0 in
  let three = B.const_f b 3.5 in
  let results =
    B.while_loop b ~name:"outer" ~invariants:[ three ]
      ~cond:(fun b vars ->
        match vars with
        | [ i; _; lim ] -> B.less b i lim
        | _ -> assert false)
      ~body:(fun b vars ->
        match vars with
        | [ i; total; _lim ] ->
            let inner =
              B.while_loop b ~name:"inner" ~invariants:[ i ]
                ~cond:(fun b vars ->
                  match vars with
                  | [ j; _; iv ] -> B.less b j iv
                  | _ -> assert false)
                ~body:(fun b vars ->
                  match vars with
                  | [ j; acc; _iv ] ->
                      [ B.add b j (B.ones_like b j);
                        B.add b acc (B.ones_like b acc) ]
                  | _ -> assert false)
                [ B.ones_like b i; B.zeros_like b total ]
            in
            let inner_count =
              B.add b (List.nth inner 1) (B.ones_like b total)
            in
            [ B.add b i (B.ones_like b i); B.add b total inner_count ]
        | _ -> assert false)
      [ i0; total0 ]
  in
  let total = List.nth results 1 in
  (* i = 1: inner runs 0 times (j=1 < 1 false) + 1; i = 2: 1 + 1;
     i = 3: 2 + 1 -> total = 1 + 2 + 3 = 6. *)
  Alcotest.(check (float 0.)) "nested sum" 6.0 (run1 b total [])

let test_frame_crossing_rejected () =
  (* A constant created inside the body (frame-crossing edge) is a
     compile-time error with a helpful message. *)
  let b = B.create () in
  let x = B.const_f b 0.0 in
  let results =
    B.while_loop b
      ~cond:(fun b vars -> B.less b (List.hd vars) (B.const_f b 3.0))
      ~body:(fun b vars -> [ B.add b (List.hd vars) (B.const_f b 1.0) ])
      [ x ]
  in
  let out = List.hd results in
  let s = Session.create ~optimize:false (B.graph b) in
  match Session.run s [ out ] with
  | _ -> Alcotest.fail "expected frame-crossing error"
  | exception Session.Run_error f ->
      Alcotest.(check bool) "mentions invariants" true
        (contains (Step_failure.to_string f) "invariants")

let test_loop_zero_iterations () =
  let b = B.create () in
  let i0 = B.const_f b 10.0 in
  let limit = B.const_f b 5.0 in
  let results =
    B.while_loop b ~invariants:[ limit ]
      ~cond:(fun b vars ->
        match vars with
        | [ i; lim ] -> B.less b i lim
        | _ -> assert false)
      ~body:(fun b vars ->
        match vars with
        | [ i; _lim ] -> [ B.add b i (B.ones_like b i) ]
        | _ -> assert false)
      [ i0 ]
  in
  Alcotest.(check (float 0.)) "initial value exits" 10.0
    (run1 b (List.hd results) [])

let test_reproducible_random_steps () =
  let b = B.create () in
  let r = B.random_uniform b ~lo:0.0 ~hi:1.0 [| 4 |] in
  let sum = B.reduce_sum b r in
  let s1 = Session.create ~seed:5 (B.graph b) in
  let s2 = Session.create ~seed:5 (B.graph b) in
  let v1 = List.hd (Session.run s1 [ sum ]) in
  let v2 = List.hd (Session.run s2 [ sum ]) in
  Alcotest.(check (float 0.)) "same seed same draw" (scalar v1) (scalar v2);
  let v3 = List.hd (Session.run s1 [ sum ]) in
  Alcotest.(check bool) "later step differs" true (scalar v3 <> scalar v1)

let test_kernel_error_reporting () =
  let b = B.create () in
  let a = B.const b (Tensor.of_float_array [| 2; 2 |] [| 1.; 2.; 3.; 4. |]) in
  let bad = B.matmul b a (B.const b (Tensor.of_float_array [| 3; 1 |] [| 1.; 2.; 3. |])) in
  let s = Session.create ~optimize:false (B.graph b) in
  match Session.run s [ bad ] with
  | _ -> Alcotest.fail "expected kernel error"
  | exception Session.Run_error f ->
      Alcotest.(check bool) "names the op" true
        (contains (Step_failure.to_string f) "MatMul")

(* ------------------- memory-planner alias safety ------------------- *)

(* Feeding and fetching pin a buffer: no kernel may be granted an
   in-place write over it, whatever the refcounts say. The checks are
   physical (buffer identity), not just value equality. *)

let test_fed_never_aliased () =
  let b = B.create () in
  let x = B.placeholder b ~shape:[| 4 |] Dtype.F32 in
  (* relu declares May_alias(0,0) and x has exactly one consumer — the
     planner must still refuse because x is fed. *)
  let y = B.relu b x in
  let s = Session.create ~optimize:false ~memory_planning:true (B.graph b) in
  let fed = Tensor.of_float_array [| 4 |] [| -1.0; 2.0; -3.0; 4.0 |] in
  let before = Tensor.copy fed in
  match Session.run ~feeds:[ (x, fed) ] s [ y ] with
  | [ got ] ->
      Alcotest.(check bool) "distinct buffers" false
        (Tensor.float_buffer got == Tensor.float_buffer fed);
      Alcotest.(check bool) "fed tensor untouched" true
        (Tensor.equal fed before)
  | _ -> Alcotest.fail "arity"

let test_fetched_never_aliased () =
  let b = B.create () in
  let c = B.const b (Tensor.of_float_array [| 4 |] [| -1.0; 2.0; -3.0; 4.0 |]) in
  let a = B.square b c in
  let y = B.relu b a in
  (* [a] is fetched, so relu must not reuse its buffer even though it is
     a's only downstream consumer. *)
  let s = Session.create ~optimize:false ~memory_planning:true (B.graph b) in
  match Session.run s [ a; y ] with
  | [ av; yv ] ->
      Alcotest.(check bool) "distinct buffers" false
        (Tensor.float_buffer av == Tensor.float_buffer yv);
      Alcotest.(check (float 0.)) "a = c^2" 1.0 (Tensor.flat_get_f av 0);
      Alcotest.(check (float 0.)) "y = relu a" 1.0 (Tensor.flat_get_f yv 0)
  | _ -> Alcotest.fail "arity"

let test_variable_read_never_aliased () =
  let b = B.create () in
  let v = B.variable b ~dtype:Dtype.F32 ~shape:[| 3 |] () in
  let init =
    B.assign b v (B.const b (Tensor.of_float_array [| 3 |] [| 1.0; -2.0; 3.0 |]))
  in
  let r = B.read b v in
  (* Read's output is the variable's backing tensor — not a fresh
     buffer — so relu must never be granted an in-place write on it. *)
  let y = B.relu b r in
  let s = Session.create ~optimize:false ~memory_planning:true (B.graph b) in
  Session.run_unit s [ init ];
  (match Session.run s [ r; y ] with
  | [ rv; yv ] ->
      Alcotest.(check bool) "distinct buffers" false
        (Tensor.float_buffer rv == Tensor.float_buffer yv)
  | _ -> Alcotest.fail "arity");
  match Session.run s [ r ] with
  | [ rv ] ->
      Alcotest.(check bool) "variable unchanged" true
        (Tensor.equal rv (Tensor.of_float_array [| 3 |] [| 1.0; -2.0; 3.0 |]))
  | _ -> Alcotest.fail "arity"

let test_diamond_never_reuses_source () =
  (* x feeds two consumers (x -> a, x -> b, a + b): neither branch may
     write into x's buffer — its refcount is 2 when each stages. *)
  let b = B.create () in
  let x = B.placeholder b ~shape:[| 4 |] Dtype.F32 in
  let a = B.square b x in
  let b' = B.neg b x in
  let sum = B.add b a b' in
  let s = Session.create ~optimize:false ~memory_planning:true (B.graph b) in
  let fed = Tensor.of_float_array [| 4 |] [| 1.0; 2.0; 3.0; 4.0 |] in
  let before = Tensor.copy fed in
  match Session.run ~feeds:[ (x, fed) ] s [ sum ] with
  | [ got ] ->
      Alcotest.(check bool) "x's buffer not reused" false
        (Tensor.float_buffer got == Tensor.float_buffer fed);
      Alcotest.(check bool) "x untouched" true (Tensor.equal fed before);
      Alcotest.(check (float 1e-6)) "x^2 - x" 2.0 (Tensor.flat_get_f got 1)
  | _ -> Alcotest.fail "arity"

let mem_live_bytes () =
  Option.value ~default:0.0
    (Metrics.find_value Metrics.default "octf_mem_live_bytes")

let test_switch_merge_refcounts_balance () =
  (* Refcounts must hit zero exactly once per endpoint even when Switch
     kills a branch and Merge fires on the first live input: the live
     gauge returning exactly to its pre-step level catches both a leak
     (ends high) and a double-drop (ends low). *)
  let b = B.create () in
  let pred = B.placeholder b Dtype.Bool in
  let x = B.const b (Tensor.of_float_array [| 64 |] (Array.make 64 2.0)) in
  let big = B.square b x in
  let f, t = B.switch b big pred in
  let merged = B.merge b [ B.neg b f; B.relu b t ] in
  let out = B.reduce_sum b merged in
  let s = Session.create ~optimize:false ~memory_planning:true (B.graph b) in
  let baseline = mem_live_bytes () in
  List.iter
    (fun p ->
      let expect = if p then 256.0 else -256.0 in
      (match Session.run ~feeds:[ (pred, Tensor.scalar_b p) ] s [ out ] with
      | [ v ] -> Alcotest.(check (float 1e-3)) "value" expect (scalar v)
      | _ -> Alcotest.fail "arity");
      Alcotest.(check (float 0.)) "live gauge back to baseline" baseline
        (mem_live_bytes ()))
    [ true; false; true; false ]

let suite =
  [
    Alcotest.test_case "switch dead propagation" `Quick
      test_switch_dead_propagation;
    Alcotest.test_case "fed never aliased" `Quick test_fed_never_aliased;
    Alcotest.test_case "fetched never aliased" `Quick
      test_fetched_never_aliased;
    Alcotest.test_case "variable read never aliased" `Quick
      test_variable_read_never_aliased;
    Alcotest.test_case "diamond never reuses source" `Quick
      test_diamond_never_reuses_source;
    Alcotest.test_case "switch/merge refcounts balance" `Quick
      test_switch_merge_refcounts_balance;
    Alcotest.test_case "merge takes live" `Quick test_merge_takes_live;
    Alcotest.test_case "dead control edge" `Quick test_dead_through_control_edge;
    Alcotest.test_case "nested cond" `Quick test_nested_cond;
    Alcotest.test_case "while multiple vars" `Quick
      test_while_loop_multiple_vars;
    Alcotest.test_case "nested while" `Quick test_nested_while;
    Alcotest.test_case "frame crossing rejected" `Quick
      test_frame_crossing_rejected;
    Alcotest.test_case "zero-iteration loop" `Quick test_loop_zero_iterations;
    Alcotest.test_case "reproducible randomness" `Quick
      test_reproducible_random_steps;
    Alcotest.test_case "kernel error reporting" `Quick
      test_kernel_error_reporting;
  ]
