(* Differential harness for the memory planner and the fusion pass:
   seeded random DAGs must fetch bit-identical tensors with planning on
   or off and with elementwise fusion on or off, under both schedulers
   and two intra-op thread budgets. Any divergence means the planner
   dropped or aliased a buffer somebody still read, or a fused kernel
   computed something its unfused originals would not; the failing
   graph is shrunk to its shortest failing prefix and printed. *)

open Octf_tensor
open Octf
module B = Builder

(* A generated graph is a straight-line program; instruction [i] may
   only reference earlier instructions, so every prefix is itself a
   valid program — which is what makes shrinking trivial. *)
type instr =
  | Leaf of int array  (* const with rng-drawn values *)
  | Fed of int array  (* placeholder, fed with an rng-drawn tensor *)
  | Unary of string * int
  | Binary of string * int * int
  | Matmul of int * int
  | Reduce of string * int  (* all-axes reduce to a scalar *)
  | Add_n of int list
  | Concat0 of int * int  (* same shape, rank >= 1, along axis 0 *)
  | Transpose2 of int  (* rank-2 transpose *)
  | Choose of int * int  (* select (a > b) a b: bool intermediate *)

let shape_to_string s =
  "[" ^ String.concat ";" (Array.to_list (Array.map string_of_int s)) ^ "]"

let instr_to_string i = function
  | Leaf s -> Printf.sprintf "%%%d = const %s" i (shape_to_string s)
  | Fed s -> Printf.sprintf "%%%d = placeholder %s (fed)" i (shape_to_string s)
  | Unary (op, a) -> Printf.sprintf "%%%d = %s %%%d" i op a
  | Binary (op, a, b) -> Printf.sprintf "%%%d = %s %%%d %%%d" i op a b
  | Matmul (a, b) -> Printf.sprintf "%%%d = matmul %%%d %%%d" i a b
  | Reduce (op, a) -> Printf.sprintf "%%%d = %s %%%d" i op a
  | Add_n srcs ->
      Printf.sprintf "%%%d = add_n [%s]" i
        (String.concat " " (List.map (Printf.sprintf "%%%d") srcs))
  | Concat0 (a, b) -> Printf.sprintf "%%%d = concat0 %%%d %%%d" i a b
  | Transpose2 a -> Printf.sprintf "%%%d = transpose %%%d" i a
  | Choose (a, b) ->
      Printf.sprintf "%%%d = select (%%%d > %%%d) %%%d %%%d" i a b a b

let unary_ops =
  [| "Neg"; "Abs"; "Square"; "Relu"; "Sigmoid"; "Tanh"; "Identity";
     "StopGradient" |]

let binary_ops = [| "Add"; "Sub"; "Mul"; "Maximum"; "Minimum" |]

(* Output shape of each instruction, used to pick compatible operands.
   Binary/Add_n operands are either same-shaped or scalar, so the
   broadcast result is the highest-rank operand's shape. All values
   stay NaN-free: leaves are in [-1, 1] and no op in the pool (no
   exp/log/sqrt/div) can escape the reals, so bitwise comparison of
   fetches is meaningful. *)
let shape_of shapes = function
  | Leaf s | Fed s -> s
  | Unary (_, a) -> shapes.(a)
  | Binary (_, a, b) | Choose (a, b) ->
      if Array.length shapes.(a) >= Array.length shapes.(b) then shapes.(a)
      else shapes.(b)
  | Matmul (a, b) -> [| shapes.(a).(0); shapes.(b).(1) |]
  | Reduce _ -> [||]
  | Add_n (a :: _) -> shapes.(a)
  | Add_n [] -> [||]
  | Concat0 (a, _) ->
      let s = Array.copy shapes.(a) in
      s.(0) <- 2 * s.(0);
      s
  | Transpose2 a -> [| shapes.(a).(1); shapes.(a).(0) |]

(* Generate a program of [ops] instructions after a fixed set of leaves.
   Operand picks that need a matching partner fall back to a unary op
   when none exists, so generation never fails. *)
let gen_program rng ~ops =
  let leaves =
    [ Leaf [||]; Leaf [| 4 |]; Leaf [| 3; 4 |]; Leaf [| 4; 5 |];
      Fed [| 4 |]; Fed [| 3; 4 |] ]
  in
  let n_leaves = List.length leaves in
  let n = n_leaves + ops in
  let prog = Array.make n (Leaf [||]) in
  let shapes = Array.make n [||] in
  List.iteri (fun i l -> prog.(i) <- l) leaves;
  List.iteri (fun i _ -> shapes.(i) <- shape_of shapes prog.(i)) leaves;
  (* A partner for [a] with the same shape, or a scalar (broadcasts with
     everything); [a] itself is allowed. *)
  let pick_partner i a =
    let candidates = ref [] in
    for j = 0 to i - 1 do
      if Shape.equal shapes.(j) shapes.(a) || Array.length shapes.(j) = 0 then
        candidates := j :: !candidates
    done;
    match !candidates with
    | [] -> None
    | l -> Some (List.nth l (Rng.int rng (List.length l)))
  in
  let same_shape_partner i a =
    match pick_partner i a with
    | Some b when Shape.equal shapes.(b) shapes.(a) -> Some b
    | _ -> None
  in
  for i = n_leaves to n - 1 do
    let a = Rng.int rng i in
    let fallback () =
      Unary (unary_ops.(Rng.int rng (Array.length unary_ops)), a)
    in
    let instr =
      match Rng.int rng 10 with
      | 0 | 1 | 2 -> fallback ()
      | 3 | 4 -> (
          match pick_partner i a with
          | Some b ->
              Binary (binary_ops.(Rng.int rng (Array.length binary_ops)), a, b)
          | None -> fallback ())
      | 5 -> (
          (* matmul: any rank-2 pair with a matching inner dimension *)
          let pairs = ref [] in
          for x = 0 to i - 1 do
            for y = 0 to i - 1 do
              if
                Array.length shapes.(x) = 2
                && Array.length shapes.(y) = 2
                && shapes.(x).(1) = shapes.(y).(0)
              then pairs := (x, y) :: !pairs
            done
          done;
          match !pairs with
          | [] -> fallback ()
          | l ->
              let x, y = List.nth l (Rng.int rng (List.length l)) in
              Matmul (x, y))
      | 6 ->
          Reduce
            ( (match Rng.int rng 3 with
              | 0 -> "ReduceSum"
              | 1 -> "ReduceMean"
              | _ -> "ReduceMax"),
              a )
      | 7 -> (
          match (pick_partner i a, pick_partner i a) with
          | Some b, Some c -> Add_n [ a; b; c ]
          | Some b, None -> Add_n [ a; b ]
          | _ -> fallback ())
      | 8 ->
          if Array.length shapes.(a) = 2 && Rng.int rng 2 = 0 then Transpose2 a
          else if Array.length shapes.(a) >= 1 then
            match same_shape_partner i a with
            | Some b -> Concat0 (a, b)
            | None -> fallback ()
          else fallback ()
      | _ -> (
          match same_shape_partner i a with
          | Some b -> Choose (a, b)
          | None -> fallback ())
    in
    prog.(i) <- instr;
    shapes.(i) <- shape_of shapes instr
  done;
  prog

(* Build the graph for a program prefix of length [k] and return the
   fetches (every sink, so nothing is silently unused) and the feed
   list. Leaf/feed values come from a generator re-seeded per build, so
   every configuration sees the same numbers. *)
let build_graph prog k =
  let b = B.create () in
  let vrng = Rng.create 77 in
  let tensor shape = Tensor.uniform vrng shape ~lo:(-1.0) ~hi:1.0 in
  let outs = Array.make k (B.const_f b 0.0) in
  let feeds = ref [] in
  for i = 0 to k - 1 do
    let o =
      match prog.(i) with
      | Leaf s -> B.const b (tensor s)
      | Fed s ->
          let ph = B.placeholder b Dtype.F32 in
          feeds := (ph, tensor s) :: !feeds;
          ph
      | Unary (op, a) -> (
          let x = outs.(a) in
          match op with
          | "Neg" -> B.neg b x
          | "Abs" -> B.abs b x
          | "Square" -> B.square b x
          | "Relu" -> B.relu b x
          | "Sigmoid" -> B.sigmoid b x
          | "Tanh" -> B.tanh b x
          | "Identity" -> B.identity b x
          | "StopGradient" -> B.stop_gradient b x
          | _ -> assert false)
      | Binary (op, a, b') -> (
          let x = outs.(a) and y = outs.(b') in
          match op with
          | "Add" -> B.add b x y
          | "Sub" -> B.sub b x y
          | "Mul" -> B.mul b x y
          | "Maximum" -> B.maximum b x y
          | "Minimum" -> B.minimum b x y
          | _ -> assert false)
      | Matmul (a, b') -> B.matmul b outs.(a) outs.(b')
      | Reduce (op, a) -> (
          match op with
          | "ReduceSum" -> B.reduce_sum b outs.(a)
          | "ReduceMean" -> B.reduce_mean b outs.(a)
          | _ -> B.reduce_max b outs.(a))
      | Add_n srcs -> B.add_n b (List.map (fun s -> outs.(s)) srcs)
      | Concat0 (a, b') -> B.concat b ~axis:0 [ outs.(a); outs.(b') ]
      | Transpose2 a -> B.transpose b outs.(a)
      | Choose (a, b') ->
          B.select b (B.greater b outs.(a) outs.(b')) outs.(a) outs.(b')
    in
    outs.(i) <- o
  done;
  (* Fetch every sink: instructions no later instruction consumes. *)
  let consumed = Array.make k false in
  for i = 0 to k - 1 do
    let mark a = if a < k then consumed.(a) <- true in
    match prog.(i) with
    | Leaf _ | Fed _ -> ()
    | Unary (_, a) | Reduce (_, a) | Transpose2 a -> mark a
    | Binary (_, a, b') | Matmul (a, b') | Concat0 (a, b') | Choose (a, b') ->
        mark a;
        mark b'
    | Add_n srcs -> List.iter mark srcs
  done;
  let fetches = ref [] in
  for i = k - 1 downto 0 do
    if not consumed.(i) then fetches := outs.(i) :: !fetches
  done;
  (b, !fetches, !feeds)

let configs =
  List.concat_map
    (fun fusion ->
      List.concat_map
        (fun planning ->
          List.concat_map
            (fun scheduler ->
              List.map
                (fun threads -> (fusion, planning, scheduler, threads))
                [ 1; 4 ])
            [ Scheduler.Inline; Scheduler.Pool ])
        [ false; true ])
    [ false; true ]

let config_to_string (fusion, planning, scheduler, threads) =
  Printf.sprintf "fusion=%b planning=%b scheduler=%s threads=%d" fusion
    planning
    (Scheduler.policy_to_string scheduler)
    threads

(* Run the program prefix under every configuration; Some description on
   the first divergence from the reference config, None if all agree. *)
let divergence prog k =
  let _, probe_fetches, _ = build_graph prog k in
  if probe_fetches = [] then None
  else begin
    let run (fusion, planning, scheduler, threads) =
      Parallel.set_threads threads;
      (* Each configuration rebuilds the (deterministically identical)
         graph: the fuse pass rewrites the graph in place at compile
         time, so sharing one graph would leak fused nodes into the
         unfused legs. *)
      let b, fetches, feeds = build_graph prog k in
      let s =
        if fusion then
          Session.create
            ~passes:[ Graph_optimizer.Fuse; Graph_optimizer.Prune ]
            ~scheduler ~memory_planning:planning (B.graph b)
        else
          Session.create ~optimize:false ~scheduler ~memory_planning:planning
            (B.graph b)
      in
      Session.run ~feeds s fetches
    in
    let reference = run (List.hd configs) in
    List.fold_left
      (fun acc config ->
        match acc with
        | Some _ -> acc
        | None ->
            let got = run config in
            if List.for_all2 Tensor.equal reference got then None
            else
              Some
                (Printf.sprintf "fetches diverge: %s vs %s"
                   (config_to_string (List.hd configs))
                   (config_to_string config)))
      None (List.tl configs)
  end

let program_to_string prog k =
  String.concat "\n" (List.init k (fun i -> "  " ^ instr_to_string i prog.(i)))

(* Quantized legs: the dynamic Quantize pass rewrites every eligible
   matmul (const rhs weights) to 8-bit arithmetic, so fetches are NOT
   bit-identical to the float reference — they must instead stay within
   the quantization error budget, and the quantized runs themselves
   must be bit-identical across schedulers and thread counts (the
   integer kernels shard deterministically).

   Error model: one dynamically quantized matmul with operands bounded
   by M and inner dimension k contributes at most
   k * (2M * step/2 + step^2/4) with step <= 2M/255 — about 0.008*k*M^2
   in absolute terms; downstream ops propagate and (matmul/add_n)
   amplify it linearly in M. The tolerance below is that analytic
   per-island bound scaled by the graph's observed magnitude, with a
   comfortable constant margin for chained islands. *)
let quant_configs =
  [
    (Scheduler.Inline, 1); (Scheduler.Inline, 4);
    (Scheduler.Pool, 1); (Scheduler.Pool, 4);
  ]

let max_abs tensors =
  List.fold_left
    (fun acc t ->
      let m = ref acc in
      for i = 0 to Tensor.numel t - 1 do
        m := Float.max !m (Float.abs (Tensor.flat_get_f t i))
      done;
      !m)
    0.0 tensors

let quant_divergence prog k =
  let _, probe_fetches, _ = build_graph prog k in
  if probe_fetches = [] then None
  else begin
    let run ~quantize (scheduler, threads) =
      Parallel.set_threads threads;
      let b, fetches, feeds = build_graph prog k in
      let s =
        if quantize then
          Session.create
            ~passes:
              [
                Graph_optimizer.Quantize (fun _ -> None);
                Graph_optimizer.Prune;
              ]
            ~scheduler (B.graph b)
        else Session.create ~optimize:false ~scheduler (B.graph b)
      in
      Session.run ~feeds s fetches
    in
    let reference = run ~quantize:false (List.hd quant_configs) in
    (* magnitude-scaled analytic tolerance; the +0.05 floor covers
       near-zero fetches downstream of cancelling subtractions *)
    let m = Float.max 1.0 (max_abs reference) in
    let tol = 0.05 +. (0.05 *. m *. m) in
    let q_reference = run ~quantize:true (List.hd quant_configs) in
    let within_tol =
      List.for_all2
        (fun r q ->
          let ok = ref true in
          for i = 0 to Tensor.numel r - 1 do
            if
              Float.abs (Tensor.flat_get_f r i -. Tensor.flat_get_f q i)
              > tol
            then ok := false
          done;
          !ok)
        reference q_reference
    in
    if not within_tol then
      Some
        (Printf.sprintf
           "quantized fetches exceed error budget %.3f vs float reference" tol)
    else
      List.fold_left
        (fun acc config ->
          match acc with
          | Some _ -> acc
          | None ->
              let got = run ~quantize:true config in
              if List.for_all2 Tensor.equal q_reference got then None
              else
                Some
                  (Printf.sprintf
                     "quantized fetches diverge: scheduler=%s threads=%d \
                      not bit-identical to the quantized reference"
                     (Scheduler.policy_to_string (fst config))
                     (snd config)))
        None (List.tl quant_configs)
  end

(* The same 200-DAG corpus as the bit-identical harness, under the
   dynamic quantization pass: eligible graphs (matmul with const rhs)
   run quantized, everything else passes through untouched. *)
let test_random_dags_quantized () =
  let saved = Parallel.threads () in
  Fun.protect ~finally:(fun () -> Parallel.set_threads saved) @@ fun () ->
  let graphs = 200 in
  for seed = 1 to graphs do
    let rng = Rng.create (1000 + seed) in
    let ops = 4 + Rng.int rng 11 in
    let prog = gen_program rng ~ops in
    let n = Array.length prog in
    match quant_divergence prog n with
    | None -> ()
    | Some full_msg ->
        let k = ref n and msg = ref full_msg in
        (try
           for j = 1 to n - 1 do
             match quant_divergence prog j with
             | Some m ->
                 k := j;
                 msg := m;
                 raise Exit
             | None -> ()
           done
         with Exit -> ());
        Alcotest.failf "seed %d, shrunk to %d instructions: %s\n%s" seed !k
          !msg
          (program_to_string prog !k)
  done

let test_random_dags () =
  let saved = Parallel.threads () in
  Fun.protect ~finally:(fun () -> Parallel.set_threads saved) @@ fun () ->
  let graphs = 200 in
  for seed = 1 to graphs do
    let rng = Rng.create (1000 + seed) in
    let ops = 4 + Rng.int rng 11 in
    let prog = gen_program rng ~ops in
    let n = Array.length prog in
    match divergence prog n with
    | None -> ()
    | Some full_msg ->
        (* Shrink: the shortest prefix that still diverges. Prefixes of
           a straight-line program are always valid graphs. *)
        let k = ref n and msg = ref full_msg in
        (try
           for j = 1 to n - 1 do
             match divergence prog j with
             | Some m ->
                 k := j;
                 msg := m;
                 raise Exit
             | None -> ()
           done
         with Exit -> ());
        Alcotest.failf "seed %d, shrunk to %d instructions: %s\n%s" seed !k
          !msg
          (program_to_string prog !k)
  done

(* Pipelined legs: a stateless program must fetch bit-identical tensors
   whether run synchronously or issued through run_async at K = 1, at
   K = 4, or under barrier mode — admission snapshots only redirect
   Read kernels, which a stateless graph has none of. Checked across
   both schedulers and two intra-op budgets. *)
let test_pipelined_stateless () =
  let saved = Parallel.threads () in
  Fun.protect ~finally:(fun () -> Parallel.set_threads saved) @@ fun () ->
  let rng = Rng.create 4242 in
  let prog = gen_program rng ~ops:10 in
  let b, fetches, feeds = build_graph prog (Array.length prog) in
  Alcotest.(check bool) "program has fetches" true (fetches <> []);
  List.iter
    (fun (scheduler, threads) ->
      Parallel.set_threads threads;
      let sync =
        let s = Session.create ~optimize:false ~scheduler (B.graph b) in
        Session.run ~feeds s fetches
      in
      List.iter
        (fun (label, max_in_flight, barrier) ->
          let s =
            Session.create ~optimize:false ~scheduler ~max_in_flight
              ~barrier (B.graph b)
          in
          let options = Session.Run_options.v ~feeds () in
          let handles =
            List.init 8 (fun _ -> Session.run_async ~options s fetches)
          in
          List.iter
            (fun h ->
              let got, _ = Session.wait h in
              if not (List.for_all2 Tensor.equal sync got) then
                Alcotest.failf
                  "pipelined %s diverges from sync (scheduler=%s threads=%d)"
                  label
                  (Scheduler.policy_to_string scheduler)
                  threads)
            handles;
          Session.drain s)
        [ ("K=1", 1, false); ("K=4", 4, false); ("barrier", 4, true) ])
    [
      (Scheduler.Inline, 1);
      (Scheduler.Inline, 4);
      (Scheduler.Pool, 1);
      (Scheduler.Pool, 4);
    ]

(* Variable updates from K = 4 in-flight steps apply under the
   variable's lock in completion order: the final state of an
   associative update graph is the exact linearizable sum, whatever the
   interleaving. *)
let test_pipelined_variable_updates () =
  let b = B.create () in
  let v = B.variable b ~name:"acc" ~dtype:Dtype.F32 ~shape:[||] () in
  let init = B.assign b v (B.const_f b 0.0) in
  let bump = B.assign_add b v (B.const_f b 1.0) in
  let read = B.read b v in
  let s = Session.create ~max_in_flight:4 (B.graph b) in
  Session.run_unit s [ init ];
  let handles = List.init 20 (fun _ -> Session.run_async s [ bump ]) in
  List.iter (fun h -> ignore (Session.wait h)) handles;
  Session.drain s;
  match Session.run s [ read ] with
  | [ t ] ->
      Alcotest.(check (float 0.0)) "linearizable sum" 20.0
        (Tensor.flat_get_f t 0)
  | _ -> assert false

let suite =
  [
    Alcotest.test_case "200 random DAGs, 16 configs, bit-identical" `Quick
      test_random_dags;
    Alcotest.test_case "200 random DAGs, quantized within error budget" `Quick
      test_random_dags_quantized;
    Alcotest.test_case "pipelined K=1/K=4/barrier bit-identical" `Quick
      test_pipelined_stateless;
    Alcotest.test_case "pipelined variable updates linearize" `Quick
      test_pipelined_variable_updates;
  ]
