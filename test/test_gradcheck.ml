(* Float64 gradient checking with the memory planner enabled: symbolic
   gradients against central finite differences at rel err < 1e-4. The
   planner's in-place grants and eager drops are on the tested path —
   a kernel scribbling over a buffer the gradient graph still needs
   shows up here as a numeric mismatch. *)

open Octf_tensor
open Octf
module B = Builder
module G = Gradients

let scalar t = Tensor.flat_get_f t 0

let grad_check ?(tol = 1e-4) ?(lo = 0.2) ?(hi = 1.5) ~shape ~f () =
  let b = B.create () in
  let x = B.placeholder b ~shape Dtype.F64 in
  let y = B.reduce_sum b (f b x) in
  let gx =
    match G.gradients b ~ys:[ y ] ~xs:[ x ] () with
    | [ Some g ] -> G.densify b g
    | _ -> Alcotest.fail "no gradient"
  in
  let session =
    Session.create ~optimize:false ~memory_planning:true (B.graph b)
  in
  let rng = Rng.create 99 in
  let point = Tensor.uniform ~dtype:Dtype.F64 rng shape ~lo ~hi in
  let eval t =
    scalar (List.hd (Session.run ~feeds:[ (x, t) ] session [ y ]))
  in
  let sym = List.hd (Session.run ~feeds:[ (x, point) ] session [ gx ]) in
  (* Float64 sweet spot: truncation O(eps^2) = 1e-10, roundoff
     O(ulp/eps) ~ 1e-11 — both far under the 1e-4 budget. *)
  let eps = 1e-5 in
  for i = 0 to Tensor.numel point - 1 do
    let bump delta =
      let p = Tensor.copy point in
      Tensor.flat_set_f p i (Tensor.flat_get_f p i +. delta);
      p
    in
    let numeric = (eval (bump eps) -. eval (bump (-.eps))) /. (2.0 *. eps) in
    let symbolic = Tensor.flat_get_f sym i in
    if Float.abs (numeric -. symbolic) > tol *. (1.0 +. Float.abs numeric)
    then
      Alcotest.failf "element %d: numeric %.8f vs symbolic %.8f" i numeric
        symbolic
  done

let case name ?tol ?lo ?hi ~shape f =
  Alcotest.test_case name `Quick (fun () ->
      grad_check ?tol ?lo ?hi ~shape ~f ())

let suite =
  [
    (* A chain of aliasable elementwise ops: each link is the sole data
       consumer of its predecessor in the forward pass, so the planner
       hands out in-place grants wherever the gradient graph has not
       added a second reader. *)
    case "in-place elementwise chain" ~shape:[| 5 |]
      ~lo:(-1.0) ~hi:1.0
      (fun b x ->
        B.sigmoid b (B.tanh b (B.square b (B.neg b x))));
    case "in-place binary chain" ~shape:[| 4 |] (fun b x ->
        let half =
          B.const b (Tensor.full Dtype.F64 [||] 0.5)
        in
        let y = B.mul b x half in
        B.add b (B.relu b y) (B.square b y));
    (* AddN with broadcasting: the [3]-shaped x is expanded against the
       [2;3] operands, so its gradient is the column sum of dy — a
       plain pass-through of dy (the old behaviour) has the wrong shape
       and the wrong values. *)
    case "add_n with broadcasting" ~shape:[| 3 |] (fun b x ->
        let m =
          B.const b
            (Tensor.of_float_array ~dtype:Dtype.F64 [| 2; 3 |]
               [| 0.5; -1.0; 2.0; 1.5; 0.25; -0.75 |])
        in
        B.add_n b [ m; x; m ]);
    case "matmul" ~shape:[| 2; 3 |] (fun b x ->
        let w =
          B.const b
            (Tensor.of_float_array ~dtype:Dtype.F64 [| 3; 2 |]
               [| 1.0; -1.0; 0.5; 2.0; -0.3; 1.5 |])
        in
        B.square b (B.matmul b x w));
    case "conv2d" ~shape:[| 1; 4; 4; 2 |] (fun b x ->
        let filt =
          B.const b
            (Tensor.uniform ~dtype:Dtype.F64 (Rng.create 7) [| 3; 3; 2; 2 |]
               ~lo:(-0.5) ~hi:0.5)
        in
        B.conv2d b ~strides:(1, 1) ~padding:`Same x filt);
    case "softmax cross-entropy" ~shape:[| 3; 4 |] (fun b x ->
        let labels =
          B.const b
            (Tensor.of_float_array ~dtype:Dtype.F64 [| 3; 4 |]
               [|
                 0.7; 0.1; 0.1; 0.1;
                 0.25; 0.25; 0.25; 0.25;
                 0.0; 0.0; 1.0; 0.0;
               |])
        in
        let loss, _backprop =
          B.softmax_cross_entropy b ~logits:x ~labels ()
        in
        loss);
  ]
