(* octf command-line interface.

     dune exec bin/octf_cli.exe -- simulate --workload inception \
       --workers 50 --ps 17 --mode sync --steps 40
     dune exec bin/octf_cli.exe -- train --steps 200 --lr 0.1
     dune exec bin/octf_cli.exe -- trace --out /tmp/step.json

   The paper-evaluation harness itself lives in bench/main.exe; this
   binary exposes the simulator and runtime interactively. *)

open Octf_tensor
open Cmdliner
module B = Octf.Builder
module Sim = Octf_sim.Replica_sim
module Stats = Octf_sim.Stats
module W = Octf_models.Workload
module Lm = Octf_models.Lstm_model

(* ----------------------------- simulate ---------------------------- *)

let workload_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "inception" ] -> Ok (W.inception_v3 ~batch:32)
    | [ "lstm-full" ] -> Ok (Lm.workload ~softmax:Lm.Full ~batch:64 ~unroll:20)
    | [ "lstm-sampled" ] ->
        Ok (Lm.workload ~softmax:(Lm.Sampled 512) ~batch:64 ~unroll:20)
    | [ "scalar" ] -> Ok W.null_scalar
    | [ "dense"; mb ] -> (
        match float_of_string_opt mb with
        | Some mb -> Ok (W.null_dense ~mb)
        | None -> Error (`Msg "dense:<megabytes>"))
    | _ ->
        Error
          (`Msg
            "expected inception | lstm-full | lstm-sampled | scalar | \
             dense:<MB>")
  in
  Arg.conv (parse, fun fmt w -> Format.pp_print_string fmt w.W.name)

let mode_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "async" ] -> Ok Sim.Async
    | [ "sync" ] -> Ok (Sim.Sync { backup = 0 })
    | [ "backup"; b ] -> (
        match int_of_string_opt b with
        | Some b -> Ok (Sim.Sync { backup = b })
        | None -> Error (`Msg "backup:<n>"))
    | _ -> Error (`Msg "expected async | sync | backup:<n>")
  in
  let print fmt = function
    | Sim.Async -> Format.pp_print_string fmt "async"
    | Sim.Sync { backup = 0 } -> Format.pp_print_string fmt "sync"
    | Sim.Sync { backup } -> Format.fprintf fmt "backup:%d" backup
  in
  Arg.conv (parse, print)

let simulate workload workers ps mode steps seed =
  let cfg =
    {
      (Sim.default ~workload) with
      Sim.num_workers = workers;
      num_ps = ps;
      coordination = mode;
      seed;
    }
  in
  let r = Sim.run cfg ~steps in
  Format.printf "workload:   %a@." W.pp workload;
  Format.printf "cluster:    %d workers, %d PS tasks@." workers ps;
  Format.printf "steps:      %d (%s)@." steps
    (match mode with
    | Sim.Async -> "asynchronous"
    | Sim.Sync { backup = 0 } -> "synchronous"
    | Sim.Sync { backup } -> Printf.sprintf "synchronous, %d backup" backup);
  Format.printf "step time:  median %.1f ms (p10 %.1f, p90 %.1f)@."
    (1000.0 *. r.Sim.summary.Stats.median)
    (1000.0 *. r.Sim.summary.Stats.p10)
    (1000.0 *. r.Sim.summary.Stats.p90);
  Format.printf "throughput: %.0f items/s@." r.Sim.throughput

let simulate_cmd =
  let workload =
    Arg.(
      value
      & opt workload_conv (W.inception_v3 ~batch:32)
      & info [ "workload" ] ~docv:"WORKLOAD"
          ~doc:
            "inception | lstm-full | lstm-sampled | scalar | dense:<MB>")
  in
  let workers =
    Arg.(value & opt int 50 & info [ "workers" ] ~doc:"Worker task count.")
  in
  let ps = Arg.(value & opt int 17 & info [ "ps" ] ~doc:"PS task count.") in
  let mode =
    Arg.(
      value & opt mode_conv Sim.Async
      & info [ "mode" ] ~doc:"async | sync | backup:<n> (Figure 4).")
  in
  let steps =
    Arg.(value & opt int 40 & info [ "steps" ] ~doc:"Steps/rounds to simulate.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Simulate distributed training on the shared-cluster model")
    Term.(const simulate $ workload $ workers $ ps $ mode $ steps $ seed)

(* --------------------------- scheduler ----------------------------- *)

(* Shared by the commands that execute real graphs. The default honours
   the OCTF_SCHEDULER environment variable, so either
   `--scheduler pool` or `OCTF_SCHEDULER=pool` enables the domain-pool
   executor. *)
let scheduler_conv =
  let parse s =
    match Octf.Scheduler.policy_of_string s with
    | Ok p -> Ok p
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv
    ( parse,
      fun fmt p ->
        Format.pp_print_string fmt (Octf.Scheduler.policy_to_string p) )

let scheduler_arg =
  Arg.(
    value
    & opt scheduler_conv (Octf.Scheduler.default_policy ())
    & info [ "scheduler" ] ~docv:"POLICY"
        ~doc:
          "Executor scheduling policy: $(b,inline) (single-threaded) or \
           $(b,pool) (parallel kernel dispatch on the shared domain pool). \
           Defaults to \\$OCTF_SCHEDULER or inline.")

(* Process-wide intra-op budget for kernel loops; results are
   bit-identical for every value, so this is purely a performance knob. *)
let intra_op_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "intra-op-threads" ] ~docv:"N"
        ~doc:
          "Threads each tensor kernel may shard its loops across (matmul \
           rows, conv patches, elementwise ranges). Defaults to \
           \\$OCTF_INTRA_OP_THREADS or the core count; $(b,1) disables \
           intra-op parallelism.")

let apply_intra_op = function
  | Some n -> Octf_tensor.Parallel.set_threads n
  | None -> ()

(* Pipeline depth for Session.run_async: how many steps may be in
   flight at once. *)
let max_in_flight_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-in-flight" ] ~docv:"K"
        ~doc:
          "Training-pipeline depth: up to $(docv) steps execute \
           concurrently, each reading an admission-time snapshot of the \
           variables while updates land in completion order \
           (asynchronous SGD). $(b,1) is the fully synchronous legacy \
           behaviour. Defaults to \\$OCTF_MAX_IN_FLIGHT or 1.")

(* -------------------------- memory planning ------------------------ *)

let memory_planning_arg =
  Arg.(
    value
    & opt (some bool) None
    & info [ "memory-planning" ] ~docv:"BOOL"
        ~doc:
          "Enable or disable the executor's memory planner: lifetime \
           analysis with eager drops, buffer-pool recycling and in-place \
           kernel grants. Fetched results are bit-identical either way. \
           Defaults to \\$OCTF_MEMORY_PLANNING or $(b,true).")

let buffer_pool_mb_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "buffer-pool-mb" ] ~docv:"MB"
        ~doc:
          "Cap in megabytes on the pool that recycles freed tensor \
           backings; $(b,0) disables pooling. Defaults to \
           \\$OCTF_BUFFER_POOL_MB or 256.")

let apply_memory planning pool_mb =
  Option.iter Octf.Mem_plan.set_enabled planning;
  Option.iter Octf_tensor.Buffer_pool.set_limit_mb pool_mb

(* ------------------------------ faults ----------------------------- *)

let fault_conv =
  let parse s =
    match Octf.Fault_injector.parse s with
    | Ok specs -> Ok specs
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv
    ( parse,
      fun fmt specs ->
        Format.pp_print_string fmt
          (String.concat ","
             (List.map Octf.Fault_injector.spec_to_string specs)) )

let fault_arg =
  Arg.(
    value
    & opt (some fault_conv) None
    & info [ "fault" ] ~docv:"SPECS"
        ~doc:
          "Comma-separated fault specs to inject, e.g. kill:ps/0@40, \
           kernel:MatMul@3, flaky:Apply:0.05, drop:grad@2, \
           delay:grad@2:50, slow:reader@0:20 (persistent straggler). \
           Equivalent to OCTF_FAULT.")

let fault_seed_arg =
  Arg.(
    value & opt int 0
    & info [ "fault-seed" ]
        ~doc:"Seed for the flaky-kernel coin (OCTF_FAULT_SEED).")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Per-step deadline in milliseconds: a step that exceeds it            fails with a structured deadline error instead of hanging.")

let deadline_of_ms = Option.map (fun ms -> ms /. 1000.0)

(* ----------------------------- metrics ----------------------------- *)

let metrics_arg =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Dump a snapshot of the process metrics registry at exit. With no \
           $(docv) (or $(docv) = -), print Prometheus text format to stdout; \
           with a path, write the file ($(b,.json) suffix selects the JSON \
           exporter, anything else Prometheus text). Also enables per-kernel \
           timing.")

let stats_every_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "stats-every" ] ~docv:"N"
        ~doc:
          "During $(b,train), collect per-node step statistics \
           (Run_metadata with collect_stats) every $(docv) steps and log a \
           metrics summary plus the per-op breakdown.")

let dump_metrics = function
  | None -> ()
  | Some "-" -> print_string (Octf.Metrics.to_prometheus Octf.Metrics.default)
  | Some path ->
      let body =
        if Filename.check_suffix path ".json" then
          Octf.Metrics.to_json Octf.Metrics.default
        else Octf.Metrics.to_prometheus Octf.Metrics.default
      in
      let oc = open_out path in
      output_string oc body;
      close_out oc;
      Format.printf "metrics snapshot written to %s@." path

(* ------------------------------ train ------------------------------ *)

(* The train subcommand is deliberately a miniature of Figure 1: the
   weight vector lives on a "ps" task, the compute (and the FIFO input
   queue feeding it) on a "worker" task, so every step exercises
   partitioned execution with real Send/Recv rendezvous traffic and
   queue backpressure — the paths the metrics registry instruments. *)
let train steps lr scheduler intra_op max_in_flight planning pool_mb
    deadline_ms fault fault_seed metrics stats_every =
  apply_intra_op intra_op;
  apply_memory planning pool_mb;
  let module Vs = Octf_nn.Var_store in
  let deadline = deadline_of_ms deadline_ms in
  if metrics <> None || stats_every <> None then
    Octf.Metrics.set_kernel_timing true;
  (match fault with
  | Some specs -> Octf.Fault_injector.install ~seed:fault_seed specs
  | None -> Octf.Fault_injector.install_from_env ());
  Fun.protect ~finally:Octf.Fault_injector.reset @@ fun () ->
  let dim = 3 in
  let true_w = [| 2.0; -3.0; 0.5 |] in
  let cluster =
    Octf.Cluster.create
      ~jobs:
        [ ("ps", 1, [ Octf.Device.CPU ]); ("worker", 1, [ Octf.Device.CPU ]) ]
  in
  let b = B.create () in
  let store = Vs.create b in
  let w =
    Vs.get store ~device:"/job:ps/task:0" ~init:Octf_nn.Init.zeros ~name:"w"
      [| dim; 1 |]
  in
  (* Input pipeline: feed placeholders into a bounded FIFO queue on the
     worker; the training step dequeues its batch from it. *)
  let x_in = B.placeholder b ~name:"x_in" ~shape:[| 32; dim |] Dtype.F32 in
  let y_in = B.placeholder b ~name:"y_in" ~shape:[| 32; 1 |] Dtype.F32 in
  let queue, enqueue, x, y =
    B.with_device b "/job:worker/task:0" (fun () ->
        let queue =
          B.fifo_queue b ~name:"input" ~capacity:8 ~num_components:2 ()
        in
        let enqueue = B.enqueue b queue [ x_in; y_in ] in
        match B.dequeue b queue ~num_components:2 with
        | [ x; y ] -> (queue, enqueue, x, y)
        | _ -> assert false)
  in
  ignore queue;
  let loss =
    B.with_device b "/job:worker/task:0" (fun () ->
        Octf_nn.Losses.mse b ~predictions:(B.matmul b x w.Vs.read) ~targets:y)
  in
  let train_op = Octf_train.Optimizer.minimize store ~lr ~loss () in
  let session =
    Octf.Cluster.session cluster ~scheduler ?max_in_flight (B.graph b)
  in
  let rng = Rng.create 12 in
  let monitor =
    Option.map
      (fun every ->
        Octf_train.Monitor.create ~every
          ~log:(fun line -> Format.printf "%s@." line)
          ())
      stats_every
  in
  let report step l =
    if (step + 1) mod (max 1 (steps / 10)) = 0 then
      Format.printf "step %4d loss %.6f@." (step + 1) (Tensor.flat_get_f l 0)
  in
  let next_batch () =
    Octf_data.Synthetic.regression_batch rng ~batch:32 ~dim ~w:true_w
      ~bias:0.0 ~noise:0.01
  in
  let fill ?deadline () =
    let xs, ys = next_batch () in
    Octf.Session.run_unit ~feeds:[ (x_in, xs); (y_in, ys) ] ?deadline session
      [ enqueue ]
  in
  let one_step ~step ~deadline =
    fill ?deadline ();
    let collect =
      match monitor with
      | Some m -> Octf_train.Monitor.should_sample m ~step
      | None -> false
    in
    let options =
      Octf.Session.Run_options.v ?deadline ~collect_stats:collect ()
    in
    match
      Octf.Session.run_with_metadata ~options session [ loss; train_op ]
    with
    | [ l; _ ], md ->
        report step l;
        Option.iter
          (fun m -> Octf_train.Monitor.on_step m ~step ~metadata:md ())
          monitor
    | _ -> assert false
  in
  (* Two batches of head start so the queue always has work buffered:
     the depth gauge stays positive for the whole run. *)
  let prefill () =
    for _ = 1 to 2 do
      fill ()
    done
  in
  (if Octf.Fault_injector.active () then begin
     (* Faults armed: run under the supervisor so failed steps recover
        from checkpoints instead of aborting the run. The supervised
        loop stays synchronous — recovery rolls variables back to a
        checkpoint, which only makes sense against a quiesced
        pipeline. *)
     let saver = Octf_train.Saver.create store in
     let prefix = Filename.concat (Filename.get_temp_dir_name ()) "octf-train" in
     let sup =
       Octf_train.Supervisor.create ~save_every:(max 1 (steps / 10)) ?deadline
         ~on_event:(function
           | Octf_train.Supervisor.Step_failed (step, f) ->
               Format.printf "step %4d FAILED: %s@." step
                 (Octf.Step_failure.to_string f)
           | Octf_train.Supervisor.Restored (step, path) ->
               Format.printf "restored %s, resuming at step %d@." path step
           | _ -> ())
         ~on_recover:(fun _ ->
           (* Restart any killed task with empty memory; init + restore
              then rebuild its state (§4.3). *)
           List.iter
             (fun (job, task) ->
               Octf.Fault_injector.revive_task ~job ~task;
               Octf.Cluster.restart_task cluster ~job ~task)
             (Octf.Fault_injector.killed_tasks ()))
         ~saver ~prefix session
     in
     let stats =
       Octf_train.Supervisor.run sup ~steps
         ~init:(fun () ->
           Octf.Session.run_unit session [ Vs.init_op store ];
           prefill ())
         one_step
     in
     Format.printf "injected faults: %d, restores: %d, checkpoints: %d@."
       (Octf.Fault_injector.injections ())
       stats.Octf_train.Supervisor.restores
       stats.Octf_train.Supervisor.checkpoints
   end
   else begin
     Octf.Session.run_unit session [ Vs.init_op store ];
     prefill ();
     let k = Octf.Session.max_in_flight session in
     if k <= 1 then
       for step = 0 to steps - 1 do
         one_step ~step ~deadline
       done
     else begin
       (* Pipelined loop: keep a window of up to K async steps in
          flight; each fill's queue backpressure plus run_async's
          admission control bound the lead the issuer can build. *)
       let inflight = Queue.create () in
       let finish_one () =
         let step, handle = Queue.pop inflight in
         match Octf.Session.wait handle with
         | [ l; _ ], md ->
             report step l;
             Option.iter
               (fun m -> Octf_train.Monitor.on_step m ~step ~metadata:md ())
               monitor
         | _ -> assert false
       in
       for step = 0 to steps - 1 do
         fill ?deadline ();
         let collect =
           match monitor with
           | Some m -> Octf_train.Monitor.should_sample m ~step
           | None -> false
         in
         let options =
           Octf.Session.Run_options.v ?deadline ~collect_stats:collect ()
         in
         Queue.push
           (step, Octf.Session.run_async ~options session [ loss; train_op ])
           inflight;
         if Queue.length inflight >= k then finish_one ()
       done;
       while not (Queue.is_empty inflight) do
         finish_one ()
       done
     end
   end);
  let learned =
    Tensor.to_float_array
      (List.hd (Octf.Session.run session [ w.Vs.read ]))
  in
  Format.printf "learned w: [%s] (true: [%s])@."
    (String.concat "; "
       (Array.to_list (Array.map (Printf.sprintf "%.3f") learned)))
    (String.concat "; "
       (Array.to_list (Array.map (Printf.sprintf "%.3f") true_w)));
  dump_metrics metrics

let train_cmd =
  let steps =
    Arg.(value & opt int 200 & info [ "steps" ] ~doc:"Training steps.")
  in
  let lr =
    Arg.(value & opt float 0.1 & info [ "lr" ] ~doc:"Learning rate.")
  in
  Cmd.v
    (Cmd.info "train"
       ~doc:
         "Train a linear model on an in-process ps/worker cluster with a \
          queued input pipeline (quick sanity run)")
    Term.(
      const train $ steps $ lr $ scheduler_arg $ intra_op_arg
      $ max_in_flight_arg $ memory_planning_arg $ buffer_pool_mb_arg
      $ deadline_arg $ fault_arg $ fault_seed_arg $ metrics_arg
      $ stats_every_arg)

(* --------------------------- fault-smoke --------------------------- *)

(* Determinism smoke for the fault injector: the same seed must fire the
   same faults; a different seed should (almost surely) differ. Run in
   `make ci`. *)
let fault_smoke seed steps scheduler intra_op =
  apply_intra_op intra_op;
  let module Vs = Octf_nn.Var_store in
  let run_once ~seed =
    Octf.Fault_injector.install ~seed
      [ Octf.Fault_injector.Flaky_kernel { pattern = "MatMul"; prob = 0.3 } ];
    Fun.protect ~finally:Octf.Fault_injector.reset @@ fun () ->
    let b = B.create () in
    let store = Vs.create b in
    let x = B.const b (Tensor.ones Dtype.F32 [| 4; 4 |]) in
    let w = Vs.get store ~init:Octf_nn.Init.zeros ~name:"w" [| 4; 4 |] in
    let out = B.reduce_sum b (B.matmul b x w.Vs.read) in
    let session = Octf.Session.create ~scheduler (B.graph b) in
    Octf.Session.run_unit session [ Vs.init_op store ];
    let failures = ref 0 in
    for _ = 1 to steps do
      match Octf.Session.run session [ out ] with
      | _ -> ()
      | exception Octf.Session.Run_error f ->
          (match f.Octf.Step_failure.cause with
          | Octf.Step_failure.Fault_injected _ -> incr failures
          | c ->
              Format.printf "unexpected failure: %s@."
                (Octf.Step_failure.cause_message c);
              exit 1)
    done;
    (!failures, Octf.Fault_injector.injections ())
  in
  let a = run_once ~seed in
  let b = run_once ~seed in
  let c = run_once ~seed:(seed + 1) in
  Format.printf "seed %d: %d/%d steps hit (twice: %b); seed %d: %d hit@." seed
    (fst a) steps (a = b) (seed + 1) (fst c);
  if a <> b then begin
    Format.printf "FAIL: same seed produced different fault sequences@.";
    exit 1
  end;
  if fst a = 0 then begin
    Format.printf "FAIL: flaky spec with prob 0.3 never fired in %d steps@."
      steps;
    exit 1
  end;
  Format.printf "fault injector is deterministic@."

let fault_smoke_cmd =
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Injector seed.")
  in
  let steps =
    Arg.(value & opt int 64 & info [ "steps" ] ~doc:"Steps per run.")
  in
  Cmd.v
    (Cmd.info "fault-smoke"
       ~doc:"Check that seeded fault injection is deterministic")
    Term.(const fault_smoke $ seed $ steps $ scheduler_arg $ intra_op_arg)

(* ------------------------------ trace ------------------------------ *)

let trace out scheduler intra_op planning pool_mb metrics =
  apply_intra_op intra_op;
  apply_memory planning pool_mb;
  let module Vs = Octf_nn.Var_store in
  if metrics <> None then Octf.Metrics.set_kernel_timing true;
  let b = B.create () in
  let store = Vs.create b in
  let x = B.const b (Tensor.ones Dtype.F32 [| 8; 16 |]) in
  let h =
    Octf_nn.Layers.dense store ~activation:`Relu ~name:"fc1" ~in_dim:16
      ~out_dim:32 x
  in
  let logits =
    Octf_nn.Layers.dense store ~name:"fc2" ~in_dim:32 ~out_dim:10 h
  in
  let loss = Octf.Builder.reduce_mean b (Octf.Builder.square b logits) in
  let train_op = Octf_train.Optimizer.minimize store ~lr:0.01 ~loss () in
  let session = Octf.Session.create ~scheduler (B.graph b) in
  Octf.Session.run_unit session [ Vs.init_op store ];
  let _, md =
    Octf.Session.run_with_metadata
      ~options:(Octf.Session.Run_options.v ~trace:true ~collect_stats:true ())
      session [ loss; train_op ]
  in
  let tracer = Option.get md.Octf.Session.Run_metadata.tracer in
  Format.printf "%a" Octf.Tracer.pp_summary tracer;
  (match md.Octf.Session.Run_metadata.step_stats with
  | Some stats ->
      Format.printf "%a" Octf.Step_stats.pp_summary stats
  | None -> ());
  (match out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Octf.Tracer.to_chrome_trace tracer);
      close_out oc;
      Format.printf "chrome trace written to %s (load in about://tracing)@."
        path);
  dump_metrics metrics

let trace_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write Chrome-trace JSON here.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Profile one training step and print a per-op kernel summary")
    Term.(
      const trace $ out $ scheduler_arg $ intra_op_arg $ memory_planning_arg
      $ buffer_pool_mb_arg $ metrics_arg)

let () =
  let info =
    Cmd.info "octf" ~version:"1.0"
      ~doc:"OCaml reproduction of TensorFlow (OSDI 2016)"
  in
  exit
    (Cmd.eval
       (Cmd.group info [ simulate_cmd; train_cmd; trace_cmd; fault_smoke_cmd ]))
