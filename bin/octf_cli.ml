(* octf command-line interface.

     dune exec bin/octf_cli.exe -- simulate --workload inception \
       --workers 50 --ps 17 --mode sync --steps 40
     dune exec bin/octf_cli.exe -- train --steps 200 --lr 0.1
     dune exec bin/octf_cli.exe -- trace --out /tmp/step.json

   The paper-evaluation harness itself lives in bench/main.exe; this
   binary exposes the simulator and runtime interactively. *)

open Octf_tensor
open Cmdliner
module B = Octf.Builder
module Sim = Octf_sim.Replica_sim
module Stats = Octf_sim.Stats
module W = Octf_models.Workload
module Lm = Octf_models.Lstm_model

(* ----------------------------- simulate ---------------------------- *)

let workload_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "inception" ] -> Ok (W.inception_v3 ~batch:32)
    | [ "lstm-full" ] -> Ok (Lm.workload ~softmax:Lm.Full ~batch:64 ~unroll:20)
    | [ "lstm-sampled" ] ->
        Ok (Lm.workload ~softmax:(Lm.Sampled 512) ~batch:64 ~unroll:20)
    | [ "scalar" ] -> Ok W.null_scalar
    | [ "dense"; mb ] -> (
        match float_of_string_opt mb with
        | Some mb -> Ok (W.null_dense ~mb)
        | None -> Error (`Msg "dense:<megabytes>"))
    | _ ->
        Error
          (`Msg
            "expected inception | lstm-full | lstm-sampled | scalar | \
             dense:<MB>")
  in
  Arg.conv (parse, fun fmt w -> Format.pp_print_string fmt w.W.name)

let mode_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "async" ] -> Ok Sim.Async
    | [ "sync" ] -> Ok (Sim.Sync { backup = 0 })
    | [ "backup"; b ] -> (
        match int_of_string_opt b with
        | Some b -> Ok (Sim.Sync { backup = b })
        | None -> Error (`Msg "backup:<n>"))
    | _ -> Error (`Msg "expected async | sync | backup:<n>")
  in
  let print fmt = function
    | Sim.Async -> Format.pp_print_string fmt "async"
    | Sim.Sync { backup = 0 } -> Format.pp_print_string fmt "sync"
    | Sim.Sync { backup } -> Format.fprintf fmt "backup:%d" backup
  in
  Arg.conv (parse, print)

let simulate workload workers ps mode steps seed =
  let cfg =
    {
      (Sim.default ~workload) with
      Sim.num_workers = workers;
      num_ps = ps;
      coordination = mode;
      seed;
    }
  in
  let r = Sim.run cfg ~steps in
  Format.printf "workload:   %a@." W.pp workload;
  Format.printf "cluster:    %d workers, %d PS tasks@." workers ps;
  Format.printf "steps:      %d (%s)@." steps
    (match mode with
    | Sim.Async -> "asynchronous"
    | Sim.Sync { backup = 0 } -> "synchronous"
    | Sim.Sync { backup } -> Printf.sprintf "synchronous, %d backup" backup);
  Format.printf "step time:  median %.1f ms (p10 %.1f, p90 %.1f)@."
    (1000.0 *. r.Sim.summary.Stats.median)
    (1000.0 *. r.Sim.summary.Stats.p10)
    (1000.0 *. r.Sim.summary.Stats.p90);
  Format.printf "throughput: %.0f items/s@." r.Sim.throughput

let simulate_cmd =
  let workload =
    Arg.(
      value
      & opt workload_conv (W.inception_v3 ~batch:32)
      & info [ "workload" ] ~docv:"WORKLOAD"
          ~doc:
            "inception | lstm-full | lstm-sampled | scalar | dense:<MB>")
  in
  let workers =
    Arg.(value & opt int 50 & info [ "workers" ] ~doc:"Worker task count.")
  in
  let ps = Arg.(value & opt int 17 & info [ "ps" ] ~doc:"PS task count.") in
  let mode =
    Arg.(
      value & opt mode_conv Sim.Async
      & info [ "mode" ] ~doc:"async | sync | backup:<n> (Figure 4).")
  in
  let steps =
    Arg.(value & opt int 40 & info [ "steps" ] ~doc:"Steps/rounds to simulate.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Simulate distributed training on the shared-cluster model")
    Term.(const simulate $ workload $ workers $ ps $ mode $ steps $ seed)

(* --------------------------- scheduler ----------------------------- *)

(* Shared by the commands that execute real graphs. The default honours
   the OCTF_SCHEDULER environment variable, so either
   `--scheduler pool` or `OCTF_SCHEDULER=pool` enables the domain-pool
   executor. *)
let scheduler_conv =
  let parse s =
    match Octf.Scheduler.policy_of_string s with
    | Ok p -> Ok p
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv
    ( parse,
      fun fmt p ->
        Format.pp_print_string fmt (Octf.Scheduler.policy_to_string p) )

let scheduler_arg =
  Arg.(
    value
    & opt scheduler_conv (Octf.Scheduler.default_policy ())
    & info [ "scheduler" ] ~docv:"POLICY"
        ~doc:
          "Executor scheduling policy: $(b,inline) (single-threaded) or \
           $(b,pool) (parallel kernel dispatch on the shared domain pool). \
           Defaults to \\$OCTF_SCHEDULER or inline.")

(* Process-wide intra-op budget for kernel loops; results are
   bit-identical for every value, so this is purely a performance knob. *)
let intra_op_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "intra-op-threads" ] ~docv:"N"
        ~doc:
          "Threads each tensor kernel may shard its loops across (matmul \
           rows, conv patches, elementwise ranges). Defaults to \
           \\$OCTF_INTRA_OP_THREADS or the core count; $(b,1) disables \
           intra-op parallelism.")

let apply_intra_op = function
  | Some n -> Octf_tensor.Parallel.set_threads n
  | None -> ()

(* Pipeline depth for Session.run_async: how many steps may be in
   flight at once. *)
let max_in_flight_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-in-flight" ] ~docv:"K"
        ~doc:
          "Training-pipeline depth: up to $(docv) steps execute \
           concurrently, each reading an admission-time snapshot of the \
           variables while updates land in completion order \
           (asynchronous SGD). $(b,1) is the fully synchronous legacy \
           behaviour. Defaults to \\$OCTF_MAX_IN_FLIGHT or 1.")

(* -------------------------- memory planning ------------------------ *)

let memory_planning_arg =
  Arg.(
    value
    & opt (some bool) None
    & info [ "memory-planning" ] ~docv:"BOOL"
        ~doc:
          "Enable or disable the executor's memory planner: lifetime \
           analysis with eager drops, buffer-pool recycling and in-place \
           kernel grants. Fetched results are bit-identical either way. \
           Defaults to \\$OCTF_MEMORY_PLANNING or $(b,true).")

let buffer_pool_mb_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "buffer-pool-mb" ] ~docv:"MB"
        ~doc:
          "Cap in megabytes on the pool that recycles freed tensor \
           backings; $(b,0) disables pooling. Defaults to \
           \\$OCTF_BUFFER_POOL_MB or 256.")

let apply_memory planning pool_mb =
  Option.iter Octf.Mem_plan.set_enabled planning;
  Option.iter Octf_tensor.Buffer_pool.set_limit_mb pool_mb

(* ------------------------------ fusion ----------------------------- *)

let fusion_arg =
  Arg.(
    value
    & opt (some bool) None
    & info [ "fusion" ] ~docv:"BOOL"
        ~doc:
          "Enable or disable the elementwise kernel-fusion optimizer \
           pass: chains of pure elementwise operations collapse into \
           single fused kernels that make one pass over memory. Fetched \
           results are bit-identical either way. Defaults to \
           \\$OCTF_FUSION or $(b,true).")

let quantize_arg =
  Arg.(
    value
    & opt (some bool) None
    & info [ "quantize" ] ~docv:"BOOL"
        ~doc:
          "Enable or disable the int8 quantization optimizer pass on \
           frozen inference graphs: eligible MatMul/Conv2D islands run \
           on 8-bit codes with 4x-smaller weight constants (numerics \
           change within one quantization step per tensor). Defaults \
           to \\$OCTF_QUANTIZE or $(b,false).")

(* ------------------------------ faults ----------------------------- *)

let fault_conv =
  let parse s =
    match Octf.Fault_injector.parse s with
    | Ok specs -> Ok specs
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv
    ( parse,
      fun fmt specs ->
        Format.pp_print_string fmt
          (String.concat ","
             (List.map Octf.Fault_injector.spec_to_string specs)) )

let fault_arg =
  Arg.(
    value
    & opt (some fault_conv) None
    & info [ "fault" ] ~docv:"SPECS"
        ~doc:
          "Comma-separated fault specs to inject, e.g. kill:ps/0@40, \
           kernel:MatMul@3, flaky:Apply:0.05, drop:grad@2, \
           delay:grad@2:50, slow:reader@0:20 (persistent straggler). \
           Equivalent to OCTF_FAULT.")

let fault_seed_arg =
  Arg.(
    value & opt int 0
    & info [ "fault-seed" ]
        ~doc:"Seed for the flaky-kernel coin (OCTF_FAULT_SEED).")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Per-step deadline in milliseconds: a step that exceeds it            fails with a structured deadline error instead of hanging.")

let deadline_of_ms = Option.map (fun ms -> ms /. 1000.0)

(* ----------------------------- metrics ----------------------------- *)

let metrics_arg =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Dump a snapshot of the process metrics registry at exit. With no \
           $(docv) (or $(docv) = -), print Prometheus text format to stdout; \
           with a path, write the file ($(b,.json) suffix selects the JSON \
           exporter, anything else Prometheus text). Also enables per-kernel \
           timing.")

let stats_every_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "stats-every" ] ~docv:"N"
        ~doc:
          "During $(b,train), collect per-node step statistics \
           (Run_metadata with collect_stats) every $(docv) steps and log a \
           metrics summary plus the per-op breakdown.")

let dump_metrics = function
  | None -> ()
  | Some "-" -> print_string (Octf.Metrics.to_prometheus Octf.Metrics.default)
  | Some path ->
      let body =
        if Filename.check_suffix path ".json" then
          Octf.Metrics.to_json Octf.Metrics.default
        else Octf.Metrics.to_prometheus Octf.Metrics.default
      in
      let oc = open_out path in
      output_string oc body;
      close_out oc;
      Format.printf "metrics snapshot written to %s@." path

(* --------------------------- Figure 1 model ------------------------ *)

(* The miniature of Figure 1 shared by train, worker and dist-smoke:
   the weight vector lives on a "ps" task, the compute (and the FIFO
   input queue feeding it) on a "worker" task, so every step exercises
   partitioned execution with real Send/Recv rendezvous traffic and
   queue backpressure. In distributed (SPMD) mode every process calls
   this same function, so all of them agree on node ids, placement and
   step-cache signatures — the invariant Octf_net relies on. *)

let figure1_dim = 3
let figure1_true_w = [| 2.0; -3.0; 0.5 |]

type figure1 = {
  fg_builder : B.t;
  fg_store : Octf_nn.Var_store.t;
  fg_w : B.output;  (* read endpoint of the weight variable *)
  fg_x_in : B.output;
  fg_y_in : B.output;
  fg_enqueue : B.output;
  fg_loss : B.output;
  fg_train_op : B.output;
  fg_init : B.output;
  fg_saver : Octf_train.Saver.t;
}

let build_figure1 ~lr () =
  let module Vs = Octf_nn.Var_store in
  let dim = figure1_dim in
  let b = B.create () in
  let store = Vs.create b in
  let w =
    Vs.get store ~device:"/job:ps/task:0" ~init:Octf_nn.Init.zeros ~name:"w"
      [| dim; 1 |]
  in
  (* Input pipeline: feed placeholders into a bounded FIFO queue on the
     worker; the training step dequeues its batch from it. *)
  let x_in = B.placeholder b ~name:"x_in" ~shape:[| 32; dim |] Dtype.F32 in
  let y_in = B.placeholder b ~name:"y_in" ~shape:[| 32; 1 |] Dtype.F32 in
  let enqueue, x, y =
    B.with_device b "/job:worker/task:0" (fun () ->
        let queue =
          B.fifo_queue b ~name:"input" ~capacity:8 ~num_components:2 ()
        in
        let enqueue = B.enqueue b queue [ x_in; y_in ] in
        match B.dequeue b queue ~num_components:2 with
        | [ x; y ] -> (enqueue, x, y)
        | _ -> assert false)
  in
  let loss =
    B.with_device b "/job:worker/task:0" (fun () ->
        Octf_nn.Losses.mse b ~predictions:(B.matmul b x w.Vs.read) ~targets:y)
  in
  let train_op = Octf_train.Optimizer.minimize store ~lr ~loss () in
  (* The init group and the saver's save/restore subgraphs are part of
     the shared graph too: in SPMD mode every process must own them
     (restore ops execute on the ps task), and building them here keeps
     node ids aligned across processes. *)
  let init = Vs.init_op store in
  let saver = Octf_train.Saver.create store in
  {
    fg_builder = b;
    fg_store = store;
    fg_w = w.Vs.read;
    fg_x_in = x_in;
    fg_y_in = y_in;
    fg_enqueue = enqueue;
    fg_loss = loss;
    fg_train_op = train_op;
    fg_init = init;
    fg_saver = saver;
  }

(* ------------------------- distributed cluster --------------------- *)

let cluster_conv =
  let parse s =
    match Octf_net.Runtime.parse_cluster s with
    | Ok entries -> Ok entries
    | Error m -> Error (`Msg m)
  in
  let print fmt entries =
    Format.pp_print_string fmt
      (String.concat ","
         (List.map
            (fun ((j, t), a) ->
              Printf.sprintf "%s:%d=%s:%d" j t a.Octf_net.Runtime.host
                a.Octf_net.Runtime.port)
            entries))
  in
  Arg.conv (parse, print)

let cluster_arg =
  Arg.(
    value
    & opt (some cluster_conv) None
    & info [ "cluster" ] ~docv:"SPEC"
        ~doc:
          "Run distributed over real sockets: comma-separated \
           $(b,job[:task]=host:port) entries (task defaults to 0), e.g. \
           $(b,ps=127.0.0.1:7000,worker=127.0.0.1:7001). Every process of \
           the cluster must be given the $(i,same) spec — each builds the \
           same graph and the spec fixes device order.")

let job_arg ~default =
  Arg.(
    value & opt string default
    & info [ "job" ] ~docv:"JOB" ~doc:"This process's job name.")

let task_arg =
  Arg.(
    value & opt int 0
    & info [ "task" ] ~docv:"N" ~doc:"This process's task index.")

(* The in-process device list implied by a cluster spec. Jobs keep
   their first-appearance order and each job gets max-task-index + 1
   CPU tasks, so identical specs yield identical device lists in every
   process. *)
let octf_cluster_of_entries entries =
  let names =
    List.fold_left
      (fun acc ((j, _), _) -> if List.mem j acc then acc else acc @ [ j ])
      [] entries
  in
  let count j =
    List.fold_left
      (fun m ((j', t), _) -> if j' = j then max m (t + 1) else m)
      0 entries
  in
  Octf.Cluster.create
    ~jobs:(List.map (fun j -> (j, count j, [ Octf.Device.CPU ])) names)

(* ------------------------------ train ------------------------------ *)
let train steps lr scheduler intra_op max_in_flight planning pool_mb fusion
    quantize deadline_ms fault fault_seed metrics stats_every net_cluster job
    task =
  apply_intra_op intra_op;
  apply_memory planning pool_mb;
  let module Vs = Octf_nn.Var_store in
  let deadline = deadline_of_ms deadline_ms in
  if metrics <> None || stats_every <> None then
    Octf.Metrics.set_kernel_timing true;
  (match fault with
  | Some specs -> Octf.Fault_injector.install ~seed:fault_seed specs
  | None -> Octf.Fault_injector.install_from_env ());
  Fun.protect ~finally:Octf.Fault_injector.reset @@ fun () ->
  let true_w = figure1_true_w in
  let cluster =
    match net_cluster with
    | Some entries -> octf_cluster_of_entries entries
    | None ->
        Octf.Cluster.create
          ~jobs:
            [
              ("ps", 1, [ Octf.Device.CPU ]); ("worker", 1, [ Octf.Device.CPU ]);
            ]
  in
  let fg = build_figure1 ~lr () in
  let b = fg.fg_builder in
  let x_in = fg.fg_x_in
  and y_in = fg.fg_y_in
  and enqueue = fg.fg_enqueue
  and loss = fg.fg_loss
  and train_op = fg.fg_train_op in
  (* In distributed mode this process is the chief: partitions placed
     on peer tasks go out as Run_step RPCs through the runtime. *)
  let rt =
    Option.map
      (fun entries ->
        Octf_net.Runtime.create
          (Octf_net.Runtime.config ~job ~task ~cluster:entries ()))
      net_cluster
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Octf_net.Runtime.shutdown rt)
  @@ fun () ->
  let session =
    Octf.Cluster.session cluster
      ~config:
        (Octf.Session.Config.v ~scheduler ?max_in_flight ?fusion ?quantize
           ?remote:(Option.map Octf_net.Runtime.runner rt)
           ())
      (B.graph b)
  in
  Option.iter (fun rt -> Octf_net.Runtime.serve rt ~session) rt;
  let rng = Rng.create 12 in
  let monitor =
    Option.map
      (fun every ->
        Octf_train.Monitor.create ~every
          ~log:(fun line -> Format.printf "%s@." line)
          ())
      stats_every
  in
  let report step l =
    if (step + 1) mod (max 1 (steps / 10)) = 0 then
      Format.printf "step %4d loss %.6f@." (step + 1) (Tensor.flat_get_f l 0)
  in
  let next_batch () =
    Octf_data.Synthetic.regression_batch rng ~batch:32 ~dim:figure1_dim
      ~w:true_w ~bias:0.0 ~noise:0.01
  in
  let fill ?deadline () =
    let xs, ys = next_batch () in
    Octf.Session.run_unit ~feeds:[ (x_in, xs); (y_in, ys) ] ?deadline session
      [ enqueue ]
  in
  let one_step ~step ~deadline =
    fill ?deadline ();
    let collect =
      match monitor with
      | Some m -> Octf_train.Monitor.should_sample m ~step
      | None -> false
    in
    let options =
      Octf.Session.Run_options.v ?deadline ~collect_stats:collect ()
    in
    match
      Octf.Session.run_with_metadata ~options session [ loss; train_op ]
    with
    | [ l; _ ], md ->
        report step l;
        Option.iter
          (fun m -> Octf_train.Monitor.on_step m ~step ~metadata:md ())
          monitor
    | _ -> assert false
  in
  (* Two batches of head start so the queue always has work buffered:
     the depth gauge stays positive for the whole run. *)
  let prefill () =
    for _ = 1 to 2 do
      fill ()
    done
  in
  (if Octf.Fault_injector.active () then begin
     (* Faults armed: run under the supervisor so failed steps recover
        from checkpoints instead of aborting the run. The supervised
        loop stays synchronous — recovery rolls variables back to a
        checkpoint, which only makes sense against a quiesced
        pipeline. *)
     let saver = fg.fg_saver in
     let prefix = Filename.concat (Filename.get_temp_dir_name ()) "octf-train" in
     let sup =
       Octf_train.Supervisor.create ~save_every:(max 1 (steps / 10)) ?deadline
         ~on_event:(function
           | Octf_train.Supervisor.Step_failed (step, f) ->
               Format.printf "step %4d FAILED: %s@." step
                 (Octf.Step_failure.to_string f)
           | Octf_train.Supervisor.Restored (step, path) ->
               Format.printf "restored %s, resuming at step %d@." path step
           | _ -> ())
         ~on_recover:(fun _ ->
           (* Restart any killed task with empty memory; init + restore
              then rebuild its state (§4.3). *)
           List.iter
             (fun (job, task) ->
               Octf.Fault_injector.revive_task ~job ~task;
               Octf.Cluster.restart_task cluster ~job ~task)
             (Octf.Fault_injector.killed_tasks ()))
         ~saver ~prefix session
     in
     let stats =
       Octf_train.Supervisor.run sup ~steps
         ~init:(fun () ->
           Octf.Session.run_unit session [ fg.fg_init ];
           prefill ())
         one_step
     in
     Format.printf "injected faults: %d, restores: %d, checkpoints: %d@."
       (Octf.Fault_injector.injections ())
       stats.Octf_train.Supervisor.restores
       stats.Octf_train.Supervisor.checkpoints
   end
   else begin
     Octf.Session.run_unit session [ fg.fg_init ];
     prefill ();
     let k = Octf.Session.max_in_flight session in
     if k <= 1 then
       for step = 0 to steps - 1 do
         one_step ~step ~deadline
       done
     else begin
       (* Pipelined loop: keep a window of up to K async steps in
          flight; each fill's queue backpressure plus run_async's
          admission control bound the lead the issuer can build. *)
       let inflight = Queue.create () in
       let finish_one () =
         let step, handle = Queue.pop inflight in
         match Octf.Session.wait handle with
         | [ l; _ ], md ->
             report step l;
             Option.iter
               (fun m -> Octf_train.Monitor.on_step m ~step ~metadata:md ())
               monitor
         | _ -> assert false
       in
       for step = 0 to steps - 1 do
         fill ?deadline ();
         let collect =
           match monitor with
           | Some m -> Octf_train.Monitor.should_sample m ~step
           | None -> false
         in
         let options =
           Octf.Session.Run_options.v ?deadline ~collect_stats:collect ()
         in
         Queue.push
           (step, Octf.Session.run_async ~options session [ loss; train_op ])
           inflight;
         if Queue.length inflight >= k then finish_one ()
       done;
       while not (Queue.is_empty inflight) do
         finish_one ()
       done
     end
   end);
  let learned =
    Tensor.to_float_array (List.hd (Octf.Session.run session [ fg.fg_w ]))
  in
  Format.printf "learned w: [%s] (true: [%s])@."
    (String.concat "; "
       (Array.to_list (Array.map (Printf.sprintf "%.3f") learned)))
    (String.concat "; "
       (Array.to_list (Array.map (Printf.sprintf "%.3f") true_w)));
  dump_metrics metrics

let train_cmd =
  let steps =
    Arg.(value & opt int 200 & info [ "steps" ] ~doc:"Training steps.")
  in
  let lr =
    Arg.(value & opt float 0.1 & info [ "lr" ] ~doc:"Learning rate.")
  in
  Cmd.v
    (Cmd.info "train"
       ~doc:
         "Train a linear model on an in-process ps/worker cluster with a \
          queued input pipeline (quick sanity run)")
    Term.(
      const train $ steps $ lr $ scheduler_arg $ intra_op_arg
      $ max_in_flight_arg $ memory_planning_arg $ buffer_pool_mb_arg
      $ fusion_arg $ quantize_arg $ deadline_arg $ fault_arg $ fault_seed_arg
      $ metrics_arg
      $ stats_every_arg $ cluster_arg $ job_arg ~default:"worker" $ task_arg)

(* ------------------------------ worker ----------------------------- *)

(* A task server process: build the same Figure-1 graph as the chief,
   attach a session to the network runtime, and serve Run_step RPCs
   until killed. The ps task of the two-process demo runs this. *)
let worker job task entries lr fault fault_seed =
  (match fault with
  | Some specs -> Octf.Fault_injector.install ~seed:fault_seed specs
  | None -> Octf.Fault_injector.install_from_env ());
  let rt =
    Octf_net.Runtime.create
      (Octf_net.Runtime.config ~job ~task ~cluster:entries ())
  in
  let fg = build_figure1 ~lr () in
  let cluster = octf_cluster_of_entries entries in
  let session =
    Octf.Cluster.session cluster
      ~config:
        (Octf.Session.Config.v ~remote:(Octf_net.Runtime.runner rt) ())
      (B.graph fg.fg_builder)
  in
  Octf_net.Runtime.serve rt ~session;
  Format.printf "octf-worker: /job:%s/task:%d serving@." job task;
  while true do
    Thread.delay 3600.0
  done

let worker_cmd =
  let cluster =
    Arg.(
      required
      & opt (some cluster_conv) None
      & info [ "cluster" ] ~docv:"SPEC"
          ~doc:
            "Cluster spec, identical to the chief's: \
             $(b,job[:task]=host:port) entries separated by commas.")
  in
  let lr =
    Arg.(
      value & opt float 0.1
      & info [ "lr" ]
          ~doc:
            "Learning rate — must match the chief's so both processes \
             build the identical graph.")
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Serve one task of a distributed cluster over TCP (run one per \
          task; the chief is $(b,octf train --cluster ...))")
    Term.(
      const worker $ job_arg ~default:"ps" $ task_arg $ cluster $ lr
      $ fault_arg $ fault_seed_arg)

(* ---------------------------- dist-smoke --------------------------- *)

(* Two real OS processes, real sockets, induced failure, verified
   recovery. The chief (this process, /job:worker/task:0) spawns the ps
   task as a child, trains under the supervisor, and at a trigger step
   either SIGKILLs the child (pskill) or arms a socket-level fault.
   Afterwards it asserts that the failure was observed as a structured
   step error, that recovery ran, and that training still converged. *)

let free_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  Unix.close fd;
  port

let wait_for_port port ~timeout =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec loop () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    let ok =
      try
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        true
      with Unix.Unix_error _ -> false
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    if ok then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.05;
      loop ()
    end
  in
  loop ()

let dist_smoke scenario steps lr =
  let module FI = Octf.Fault_injector in
  let module Sup = Octf_train.Supervisor in
  let module Vs = Octf_nn.Var_store in
  let ps_port = free_port () in
  let worker_port = free_port () in
  let spec =
    Printf.sprintf "ps=127.0.0.1:%d,worker=127.0.0.1:%d" ps_port worker_port
  in
  let spawn_ps () =
    let pid =
      Unix.create_process Sys.executable_name
        [|
          Sys.executable_name; "worker"; "--job"; "ps"; "--task"; "0";
          "--cluster"; spec; "--lr"; string_of_float lr;
        |]
        Unix.stdin Unix.stdout Unix.stderr
    in
    if not (wait_for_port ps_port ~timeout:10.0) then begin
      Format.printf "FAIL: ps task never started listening@.";
      exit 1
    end;
    pid
  in
  let ps_pid = ref (spawn_ps ()) in
  let kill_ps () =
    (try Unix.kill !ps_pid Sys.sigkill with Unix.Unix_error _ -> ());
    try ignore (Unix.waitpid [] !ps_pid) with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:(fun () -> kill_ps (); FI.reset ())
  @@ fun () ->
  let trigger = max 2 (steps / 4) in
  (* Socket-level faults are armed from the start but fire only from
     the trigger step on (the @step clause), once each. *)
  (match scenario with
  | `Pskill -> ()
  | `Corrupt ->
      FI.install [ FI.Corrupt_frame { pattern = "tensor"; step = trigger } ]
  | `Dropconn ->
      FI.install [ FI.Drop_conn { peer = "ps/0"; step = trigger } ]
  | `Framedelay ->
      FI.install
        [ FI.Delay_frame { pattern = "run_step"; step = trigger; ms = 50.0 } ]);
  let entries =
    match Octf_net.Runtime.parse_cluster spec with
    | Ok e -> e
    | Error m -> failwith m
  in
  let rt =
    Octf_net.Runtime.create
      (Octf_net.Runtime.config ~job:"worker" ~task:0 ~cluster:entries
         ~backoff:
           (Octf.Backoff.policy ~base:0.05 ~multiplier:2.0 ~cap:0.25
              ~jitter:0.25 ())
         ())
  in
  Fun.protect ~finally:(fun () -> Octf_net.Runtime.shutdown rt)
  @@ fun () ->
  let fg = build_figure1 ~lr () in
  let cluster = octf_cluster_of_entries entries in
  let session =
    Octf.Cluster.session cluster
      ~config:
        (Octf.Session.Config.v ~remote:(Octf_net.Runtime.runner rt) ())
      (B.graph fg.fg_builder)
  in
  Octf_net.Runtime.serve rt ~session;
  let rng = Rng.create 12 in
  let fill () =
    let xs, ys =
      Octf_data.Synthetic.regression_batch rng ~batch:32 ~dim:figure1_dim
        ~w:figure1_true_w ~bias:0.0 ~noise:0.01
    in
    Octf.Session.run_unit
      ~feeds:[ (fg.fg_x_in, xs); (fg.fg_y_in, ys) ]
      session [ fg.fg_enqueue ]
  in
  let killed = ref false in
  let saw_network = ref false in
  let saver = fg.fg_saver in
  let prefix =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "octf-dist-%d" (Unix.getpid ()))
  in
  let sup =
    Sup.create ~save_every:5 ~max_failures:50 ~backoff:0.05 ~max_backoff:0.5
      ~on_event:(function
        | Sup.Step_failed (step, f) ->
            (match f.Octf.Step_failure.cause with
            | Octf.Step_failure.Network_error _ -> saw_network := true
            | _ -> ());
            Format.printf "step %4d FAILED: %s@." step
              (Octf.Step_failure.to_string f)
        | Sup.Restored (step, path) ->
            Format.printf "restored %s, resuming at step %d@." path step
        | _ -> ())
      ~on_recover:(fun _ ->
        (* A recovering chief first makes sure its ps task is back:
           respawn it if the process died, then wait out the dial
           backoff so init/restore below find a live peer. *)
        (match Unix.waitpid [ Unix.WNOHANG ] !ps_pid with
        | 0, _ -> ()
        | _ ->
            Format.printf "respawning ps task@.";
            ps_pid := spawn_ps ()
        | exception Unix.Unix_error _ -> ps_pid := spawn_ps ());
        Thread.delay 0.3)
      ~saver ~prefix session
  in
  let one_step ~step ~deadline:_ =
    if scenario = `Pskill && step = trigger && not !killed then begin
      killed := true;
      Format.printf "killing ps task (pid %d) at step %d@." !ps_pid step;
      try Unix.kill !ps_pid Sys.sigkill with Unix.Unix_error _ -> ()
    end;
    fill ();
    Octf.Session.run_unit session [ fg.fg_loss; fg.fg_train_op ]
  in
  let stats =
    try
      Sup.run sup ~steps
        ~init:(fun () ->
          Octf.Session.run_unit session [ fg.fg_init ];
          fill ())
        one_step
    with Octf.Session.Run_error f ->
      Format.printf "FAIL: unrecovered step failure: %s@."
        (Octf.Step_failure.to_string f);
      exit 1
  in
  let learned =
    Tensor.to_float_array (List.hd (Octf.Session.run session [ fg.fg_w ]))
  in
  Format.printf "learned w: [%s] (true: [%s])@."
    (String.concat "; "
       (Array.to_list (Array.map (Printf.sprintf "%.3f") learned)))
    (String.concat "; "
       (Array.to_list (Array.map (Printf.sprintf "%.3f") figure1_true_w)));
  Format.printf
    "steps %d, failures %d, restores %d, checkpoints %d, injected %d, \
     network errors seen %b@."
    stats.Sup.steps_completed stats.Sup.failures stats.Sup.restores
    stats.Sup.checkpoints (FI.injections ()) !saw_network;
  let failed = ref false in
  let check what ok =
    if not ok then begin
      failed := true;
      Format.printf "FAIL: %s@." what
    end
  in
  let close =
    Array.for_all2
      (fun a b -> Float.abs (a -. b) < 0.3)
      learned figure1_true_w
  in
  check "training converged" close;
  (match scenario with
  | `Pskill ->
      check "ps kill surfaced as a network step failure" !saw_network;
      check "state was restored from a checkpoint" (stats.Sup.restores >= 1)
  | `Corrupt | `Dropconn ->
      check "fault was injected" (FI.injections () >= 1);
      check "fault surfaced as a step failure" (stats.Sup.failures >= 1)
  | `Framedelay -> check "fault was injected" (FI.injections () >= 1));
  if !failed then exit 1;
  Format.printf "PASS@."

let dist_smoke_cmd =
  let scenario =
    Arg.(
      value
      & opt
          (enum
             [
               ("pskill", `Pskill); ("corrupt", `Corrupt);
               ("dropconn", `Dropconn); ("framedelay", `Framedelay);
             ])
          `Pskill
      & info [ "scenario" ] ~docv:"SCENARIO"
          ~doc:
            "$(b,pskill) (SIGKILL the ps task mid-training, respawn, \
             restore), $(b,corrupt) (flip a bit in a tensor frame), \
             $(b,dropconn) (sever the ps connection), $(b,framedelay) \
             (delay an RPC frame).")
  in
  let steps =
    Arg.(value & opt int 60 & info [ "steps" ] ~doc:"Training steps.")
  in
  let lr =
    Arg.(value & opt float 0.1 & info [ "lr" ] ~doc:"Learning rate.")
  in
  Cmd.v
    (Cmd.info "dist-smoke"
       ~doc:
         "Two-process recovery demo: train over TCP, induce a failure, \
          verify structured errors, reconnect and checkpoint recovery")
    Term.(const dist_smoke $ scenario $ steps $ lr)

(* --------------------------- fault-smoke --------------------------- *)

(* Determinism smoke for the fault injector: the same seed must fire the
   same faults; a different seed should (almost surely) differ. Run in
   `make ci`. *)
let fault_smoke seed steps scheduler intra_op =
  apply_intra_op intra_op;
  let module Vs = Octf_nn.Var_store in
  let run_once ~seed =
    Octf.Fault_injector.install ~seed
      [ Octf.Fault_injector.Flaky_kernel { pattern = "MatMul"; prob = 0.3 } ];
    Fun.protect ~finally:Octf.Fault_injector.reset @@ fun () ->
    let b = B.create () in
    let store = Vs.create b in
    let x = B.const b (Tensor.ones Dtype.F32 [| 4; 4 |]) in
    let w = Vs.get store ~init:Octf_nn.Init.zeros ~name:"w" [| 4; 4 |] in
    let out = B.reduce_sum b (B.matmul b x w.Vs.read) in
    let session =
      Octf.Session.create
        ~config:(Octf.Session.Config.v ~scheduler ())
        (B.graph b)
    in
    Octf.Session.run_unit session [ Vs.init_op store ];
    let failures = ref 0 in
    for _ = 1 to steps do
      match Octf.Session.run session [ out ] with
      | _ -> ()
      | exception Octf.Session.Run_error f ->
          (match f.Octf.Step_failure.cause with
          | Octf.Step_failure.Fault_injected _ -> incr failures
          | c ->
              Format.printf "unexpected failure: %s@."
                (Octf.Step_failure.cause_message c);
              exit 1)
    done;
    (!failures, Octf.Fault_injector.injections ())
  in
  let a = run_once ~seed in
  let b = run_once ~seed in
  let c = run_once ~seed:(seed + 1) in
  Format.printf "seed %d: %d/%d steps hit (twice: %b); seed %d: %d hit@." seed
    (fst a) steps (a = b) (seed + 1) (fst c);
  if a <> b then begin
    Format.printf "FAIL: same seed produced different fault sequences@.";
    exit 1
  end;
  if fst a = 0 then begin
    Format.printf "FAIL: flaky spec with prob 0.3 never fired in %d steps@."
      steps;
    exit 1
  end;
  Format.printf "fault injector is deterministic@."

let fault_smoke_cmd =
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Injector seed.")
  in
  let steps =
    Arg.(value & opt int 64 & info [ "steps" ] ~doc:"Steps per run.")
  in
  Cmd.v
    (Cmd.info "fault-smoke"
       ~doc:"Check that seeded fault injection is deterministic")
    Term.(const fault_smoke $ seed $ steps $ scheduler_arg $ intra_op_arg)

(* ------------------------------ serve ------------------------------ *)

(* Inference serving (ISSUE 8): train a model briefly, freeze it
   (variables folded to constants, graph pruned to the inference
   subgraph), then drive the micro-batching server with concurrent
   client threads and report throughput and latency percentiles. *)

module Serving = Octf_serving.Serving

type serve_model = {
  sm_name : string;
  sm_session : Octf.Session.t;  (* trained live session *)
  sm_inputs : B.output list;
  sm_outputs : B.output list;
  sm_example : Rng.t -> Tensor.t list;  (* one per-example request *)
}

let serve_mnist_cnn ~train_steps ~scheduler =
  let module Vs = Octf_nn.Var_store in
  let module L = Octf_nn.Layers in
  let classes = 4 and image_size = 12 and batch = 16 in
  let b = B.create () in
  let store = Vs.create b in
  (* Direct placeholders (no queue pipeline): the serving path feeds
     stacked request tensors straight into the frozen step. *)
  let pixels = B.placeholder b ~name:"pixels" Dtype.F32 in
  let labels = B.placeholder b ~name:"labels" Dtype.I32 in
  let conv1 =
    L.conv2d store ~activation:`Relu ~name:"conv1" ~in_channels:1
      ~out_channels:8 ~ksize:(3, 3) pixels
  in
  let pool1 = L.max_pool2d b ~ksize:(2, 2) conv1 in
  let conv2 =
    L.conv2d store ~activation:`Relu ~name:"conv2" ~in_channels:8
      ~out_channels:16 ~ksize:(3, 3) pool1
  in
  let pool2 = L.max_pool2d b ~ksize:(2, 2) conv2 in
  let side = image_size / 4 in
  let flat = L.flatten b ~features:(side * side * 16) pool2 in
  let hidden =
    L.dense store ~activation:`Relu ~name:"fc1"
      ~in_dim:(side * side * 16)
      ~out_dim:32 flat
  in
  let logits = L.dense store ~name:"logits" ~in_dim:32 ~out_dim:classes hidden in
  let loss =
    Octf_nn.Losses.sparse_softmax_cross_entropy_mean b ~num_classes:classes
      ~logits ~labels
  in
  let train_op =
    Octf_train.Optimizer.minimize store
      ~algorithm:Octf_train.Optimizer.adam_default ~lr:0.003 ~loss ()
  in
  let session =
    Octf.Session.create
      ~config:(Octf.Session.Config.v ~scheduler ())
      (B.graph b)
  in
  Octf.Session.run_unit session [ Vs.init_op store ];
  let rng = Rng.create 5 in
  for _ = 1 to train_steps do
    let imgs =
      Octf_data.Synthetic.image_batch rng ~batch ~size:image_size ~channels:1
        ~classes
    in
    Octf.Session.run_unit
      ~feeds:
        [
          (pixels, imgs.Octf_data.Synthetic.pixels);
          (labels, imgs.Octf_data.Synthetic.labels);
        ]
      session [ train_op ]
  done;
  let example rng =
    let imgs =
      Octf_data.Synthetic.image_batch rng ~batch:1 ~size:image_size ~channels:1
        ~classes
    in
    [
      Tensor.reshape imgs.Octf_data.Synthetic.pixels
        [| image_size; image_size; 1 |];
    ]
  in
  {
    sm_name = "mnist-cnn";
    sm_session = session;
    sm_inputs = [ pixels ];
    sm_outputs = [ logits ];
    sm_example = example;
  }

let serve_lstm ~train_steps ~scheduler =
  let module Vs = Octf_nn.Var_store in
  let units = 64 and input_dim = 32 and batch = 16 in
  let b = B.create () in
  let store = Vs.create b in
  let cell = Octf_nn.Lstm.cell store ~name:"cell" ~input_dim ~units in
  (* One recurrence step as the served computation; the request carries
     the input and the running (h, c) state — a three-input signature. *)
  let x = B.placeholder b ~name:"x" Dtype.F32 in
  let h = B.placeholder b ~name:"h" Dtype.F32 in
  let c = B.placeholder b ~name:"c" Dtype.F32 in
  let h', c' = Octf_nn.Lstm.step cell b ~x ~h ~c in
  let loss = B.reduce_mean b (B.square b h') in
  let train_op = Octf_train.Optimizer.minimize store ~lr:0.05 ~loss () in
  let session =
    Octf.Session.create
      ~config:(Octf.Session.Config.v ~scheduler ())
      (B.graph b)
  in
  Octf.Session.run_unit session [ Vs.init_op store ];
  let rng = Rng.create 7 in
  for _ = 1 to train_steps do
    let xs = Tensor.uniform rng [| batch; input_dim |] ~lo:(-1.0) ~hi:1.0 in
    let zeros = Tensor.zeros Dtype.F32 [| batch; units |] in
    Octf.Session.run_unit
      ~feeds:[ (x, xs); (h, zeros); (c, zeros) ]
      session [ train_op ]
  done;
  let example rng =
    [
      Tensor.uniform rng [| input_dim |] ~lo:(-1.0) ~hi:1.0;
      Tensor.zeros Dtype.F32 [| units |];
      Tensor.zeros Dtype.F32 [| units |];
    ]
  in
  {
    sm_name = "lstm";
    sm_session = session;
    sm_inputs = [ x; h; c ];
    sm_outputs = [ h'; c' ];
    sm_example = example;
  }

let percentile sorted p =
  if Array.length sorted = 0 then nan
  else
    sorted.(min
              (Array.length sorted - 1)
              (int_of_float (p *. float_of_int (Array.length sorted))))

let serve model train_steps clients requests max_batch max_delay_ms
    queue_capacity deadline_ms assert_batched scheduler intra_op planning
    pool_mb quantize metrics =
  apply_intra_op intra_op;
  apply_memory planning pool_mb;
  if metrics <> None then Octf.Metrics.set_kernel_timing true;
  let sm =
    match model with
    | `Mnist_cnn -> serve_mnist_cnn ~train_steps ~scheduler
    | `Lstm -> serve_lstm ~train_steps ~scheduler
  in
  let frozen =
    Serving.freeze_session
      ~config:(Octf.Session.Config.v ~scheduler ())
      ?quantize ~inputs:sm.sm_inputs ~outputs:sm.sm_outputs sm.sm_session
  in
  let total = Octf.Graph.node_count (Octf.Session.graph sm.sm_session) in
  let kept =
    Serving.inference_node_count frozen ~inputs:sm.sm_inputs
      ~outputs:sm.sm_outputs
  in
  Format.printf "model: %s — frozen inference subgraph: %d of %d nodes@."
    sm.sm_name kept total;
  let server =
    Serving.create ~name:sm.sm_name ~max_batch_size:max_batch
      ~max_queue_delay:(max_delay_ms /. 1000.0)
      ~queue_capacity
      ?default_deadline:(deadline_of_ms deadline_ms)
      ~session:frozen ~inputs:sm.sm_inputs ~outputs:sm.sm_outputs ()
  in
  let latencies = Array.make_matrix clients requests nan in
  let served = Array.make clients 0
  and shed = Array.make clients 0
  and failed = Array.make clients 0 in
  let t0 = Unix.gettimeofday () in
  let client ci =
    let rng = Rng.create (100 + ci) in
    for ri = 0 to requests - 1 do
      let s = Unix.gettimeofday () in
      match Serving.infer server (sm.sm_example rng) with
      | Ok _ ->
          latencies.(ci).(ri) <- Unix.gettimeofday () -. s;
          served.(ci) <- served.(ci) + 1
      | Error { Octf.Step_failure.cause = Octf.Step_failure.Overloaded _; _ }
        ->
          shed.(ci) <- shed.(ci) + 1;
          (* back off briefly instead of hammering a shedding server *)
          Thread.delay 0.002
      | Error _ -> failed.(ci) <- failed.(ci) + 1
    done
  in
  let threads = List.init clients (fun ci -> Thread.create client ci) in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let ok = Array.fold_left ( + ) 0 served in
  let lat =
    Array.of_list
      (List.filter
         (fun l -> not (Float.is_nan l))
         (List.concat_map Array.to_list (Array.to_list latencies)))
  in
  Array.sort compare lat;
  let stats = Serving.stats server in
  Serving.shutdown server;
  Format.printf "clients: %d, requests/client: %d@." clients requests;
  Format.printf "served %d/%d, shed %d, failed %d@." ok (clients * requests)
    (Array.fold_left ( + ) 0 shed)
    (Array.fold_left ( + ) 0 failed);
  Format.printf "throughput: %.0f req/s@." (float_of_int ok /. wall);
  Format.printf "latency: p50 %.1f ms, p99 %.1f ms@."
    (1000.0 *. percentile lat 0.50)
    (1000.0 *. percentile lat 0.99);
  Format.printf "batches: %d (mean %.1f, max %d)@." stats.Serving.batches
    (if stats.Serving.batches = 0 then 0.0
     else float_of_int stats.Serving.served /. float_of_int stats.Serving.batches)
    stats.Serving.max_batch;
  dump_metrics metrics;
  if assert_batched && stats.Serving.max_batch < 2 then begin
    Format.printf "FAIL: no request coalescing happened@.";
    exit 1
  end;
  if ok = 0 then begin
    Format.printf "FAIL: no request was served@.";
    exit 1
  end

let serve_cmd =
  let model =
    Arg.(
      value
      & opt (enum [ ("mnist-cnn", `Mnist_cnn); ("lstm", `Lstm) ]) `Mnist_cnn
      & info [ "model" ] ~docv:"MODEL"
          ~doc:
            "$(b,mnist-cnn) (convnet classifier, one image per request) or \
             $(b,lstm) (one recurrence step; each request carries x, h, c).")
  in
  let train_steps =
    Arg.(
      value & opt int 30
      & info [ "train-steps" ]
          ~doc:"Training steps before the model is frozen.")
  in
  let clients =
    Arg.(
      value & opt int 8
      & info [ "clients" ] ~doc:"Concurrent client threads.")
  in
  let requests =
    Arg.(
      value & opt int 40
      & info [ "requests" ] ~doc:"Requests issued by each client.")
  in
  let max_batch =
    Arg.(
      value & opt int 8
      & info [ "max-batch" ]
          ~doc:
            "Micro-batch size cap; $(b,1) disables coalescing (the \
             baseline the bench compares against).")
  in
  let max_delay_ms =
    Arg.(
      value & opt float 2.0
      & info [ "max-delay-ms" ]
          ~doc:
            "Longest a queued request may wait for batch-mates before \
             its batch is dispatched anyway.")
  in
  let queue_capacity =
    Arg.(
      value & opt int 64
      & info [ "queue-capacity" ]
          ~doc:
            "Admission high-watermark: submits beyond this many queued \
             requests are shed with a structured Overloaded rejection.")
  in
  let assert_batched =
    Arg.(
      value & flag
      & info [ "assert-batched" ]
          ~doc:
            "Exit non-zero unless at least one dispatched batch \
             coalesced two or more requests (used by $(b,make \
             serving-smoke)).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Freeze a briefly-trained model and serve it: concurrent clients, \
          dynamic micro-batching, deadlines and load shedding")
    Term.(
      const serve $ model $ train_steps $ clients $ requests $ max_batch
      $ max_delay_ms $ queue_capacity $ deadline_arg $ assert_batched
      $ scheduler_arg $ intra_op_arg $ memory_planning_arg
      $ buffer_pool_mb_arg $ quantize_arg $ metrics_arg)

(* ------------------------------ trace ------------------------------ *)

let trace out scheduler intra_op planning pool_mb fusion metrics =
  apply_intra_op intra_op;
  apply_memory planning pool_mb;
  let module Vs = Octf_nn.Var_store in
  if metrics <> None then Octf.Metrics.set_kernel_timing true;
  let b = B.create () in
  let store = Vs.create b in
  let x = B.const b (Tensor.ones Dtype.F32 [| 8; 16 |]) in
  let h =
    Octf_nn.Layers.dense store ~activation:`Relu ~name:"fc1" ~in_dim:16
      ~out_dim:32 x
  in
  let logits =
    Octf_nn.Layers.dense store ~name:"fc2" ~in_dim:32 ~out_dim:10 h
  in
  let loss = Octf.Builder.reduce_mean b (Octf.Builder.square b logits) in
  let train_op = Octf_train.Optimizer.minimize store ~lr:0.01 ~loss () in
  let session =
    Octf.Session.create
      ~config:(Octf.Session.Config.v ~scheduler ?fusion ())
      (B.graph b)
  in
  Octf.Session.run_unit session [ Vs.init_op store ];
  let _, md =
    Octf.Session.run_with_metadata
      ~options:(Octf.Session.Run_options.v ~trace:true ~collect_stats:true ())
      session [ loss; train_op ]
  in
  let tracer = Option.get md.Octf.Session.Run_metadata.tracer in
  Format.printf "%a" Octf.Tracer.pp_summary tracer;
  (match md.Octf.Session.Run_metadata.step_stats with
  | Some stats ->
      Format.printf "%a" Octf.Step_stats.pp_summary stats
  | None -> ());
  (match out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Octf.Tracer.to_chrome_trace tracer);
      close_out oc;
      Format.printf "chrome trace written to %s (load in about://tracing)@."
        path);
  dump_metrics metrics

let trace_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write Chrome-trace JSON here.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Profile one training step and print a per-op kernel summary")
    Term.(
      const trace $ out $ scheduler_arg $ intra_op_arg $ memory_planning_arg
      $ buffer_pool_mb_arg $ fusion_arg $ metrics_arg)

let () =
  let info =
    Cmd.info "octf" ~version:"1.0"
      ~doc:"OCaml reproduction of TensorFlow (OSDI 2016)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            simulate_cmd; train_cmd; serve_cmd; trace_cmd; fault_smoke_cmd;
            worker_cmd; dist_smoke_cmd;
          ]))
