(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6). Run with no arguments for everything, or pass any of:
   table1 dispatch fig6 fig7 fig8 fig9 softmax-ablation shard-ablation

   Each experiment prints the series the paper plots; EXPERIMENTS.md
   records paper-vs-measured values. *)

open Octf_tensor
module B = Octf.Builder
module Zoo = Octf_models.Convnet_zoo
module Fw = Octf_models.Framework_model
module W = Octf_models.Workload
module Lm = Octf_models.Lstm_model
module Sim = Octf_sim.Replica_sim
module Stats = Octf_sim.Stats

let section title = Printf.printf "\n=== %s ===\n%!" title

(* ------------------------------------------------------------------ *)
(* Table 1: single-machine convnet step times                          *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1: training step time (ms), one simulated Titan X";
  let models = [ Zoo.alexnet; Zoo.overfeat; Zoo.oxfordnet; Zoo.googlenet ] in
  Printf.printf "%-12s" "Library";
  List.iter (fun m -> Printf.printf "%12s" m.Zoo.name) models;
  print_newline ();
  List.iter
    (fun fw ->
      Printf.printf "%-12s" fw.Fw.fw_name;
      List.iter (fun m -> Printf.printf "%12.0f" (Fw.step_time_ms m fw)) models;
      print_newline ())
    Fw.all;
  Printf.printf
    "(paper: Caffe 324/823/1068/1935, Neon 87/211/320/270, Torch \
     81/268/529/470, TensorFlow 81/279/540/445)\n%!"

(* ------------------------------------------------------------------ *)
(* S5 claim: executor dispatches ~2M null ops per second               *)
(* ------------------------------------------------------------------ *)

let build_null_graph n =
  let b = B.create () in
  let zero = B.const_f b 0.0 in
  let outs = List.init n (fun _ -> B.identity b zero) in
  (b, B.add_n b outs)

let dispatch_bechamel () =
  section "Executor dispatch rate (bechamel; paper: ~2,000,000 null ops/s)";
  let n = 1000 in
  let b, sink = build_null_graph n in
  let session =
    Octf.Session.create ~config:(Octf.Session.Config.v ~passes:[] ()) (B.graph b)
  in
  ignore (Octf.Session.run session [ sink ]);
  let test =
    Bechamel.Test.make ~name:"null-step-1000-ops"
      (Bechamel.Staged.stage (fun () ->
           ignore (Octf.Session.run session [ sink ])))
  in
  let results =
    let open Bechamel in
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
    Benchmark.all cfg instances test
  in
  let ols =
    Bechamel.Analyze.all
      (Bechamel.Analyze.ols ~bootstrap:0 ~r_square:false
         ~predictors:[| Bechamel.Measure.run |])
      Bechamel.Toolkit.Instance.monotonic_clock results
  in
  Hashtbl.iter
    (fun name result ->
      match Bechamel.Analyze.OLS.estimates result with
      | Some [ ns_per_step ] ->
          let ops_per_sec = float_of_int n /. (ns_per_step /. 1e9) in
          Printf.printf "%s: %.0f ns/step -> %.2f M ops/sec\n%!" name
            ns_per_step (ops_per_sec /. 1e6)
      | _ -> Printf.printf "%s: (no estimate)\n%!" name)
    ols

(* ------------------------------------------------------------------ *)
(* Scheduler comparison: inline loop vs shared domain pool             *)
(* ------------------------------------------------------------------ *)

(* Smoke mode (OCTF_BENCH_SMOKE=1) shrinks sizes so CI can exercise the
   full path in seconds; BENCH_dispatch.json records which mode ran. *)
let smoke_mode () =
  match Sys.getenv_opt "OCTF_BENCH_SMOKE" with
  | Some ("" | "0") | None -> false
  | Some _ -> true

(* Mean seconds per step, after one warm-up step that pays plan
   compilation. Timed through [run_with_metadata] with default options
   so the benchmark exercises the same entry point the observability
   layer instruments (stats collection off: its cost must not leak into
   the dispatch numbers). *)
let time_steps session sink ~iters =
  ignore (Octf.Session.run session [ sink ]);
  let options = Octf.Session.Run_options.default in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    ignore (Octf.Session.run_with_metadata ~options session [ sink ])
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int iters

(* A wide graph: [width] independent matmul chains joined by one AddN —
   the §3.3 inter-op parallelism shape. Branches share no edges, so the
   pool scheduler can run them on distinct cores. *)
let build_wide_graph ~width ~dim ~chain =
  let b = B.create () in
  let rng = Rng.create 7 in
  let fresh () =
    B.const b (Tensor.uniform rng [| dim; dim |] ~lo:(-1.0) ~hi:1.0)
  in
  let branch _ =
    let x = ref (fresh ()) in
    for _ = 1 to chain do
      x := B.matmul b !x (fresh ())
    done;
    B.reduce_sum b !x
  in
  (b, B.add_n b (List.init width branch))

let dispatch_wide () =
  section "Wide-graph dispatch: inline vs domain-pool scheduler";
  let smoke = smoke_mode () in
  let width = if smoke then 8 else 32 in
  let dim = if smoke then 16 else 64 in
  let chain = 2 in
  let wide_iters = if smoke then 3 else 10 in
  let null_n = if smoke then 200 else 1000 in
  let null_iters = if smoke then 50 else 400 in
  let measure scheduler ~build ~iters =
    let b, sink = build () in
    let session =
      Octf.Session.create
        ~config:(Octf.Session.Config.v ~passes:[] ~scheduler ())
        (B.graph b)
    in
    time_steps session sink ~iters
  in
  (* Wide graph: per-step wall clock. *)
  let wide_build () = build_wide_graph ~width ~dim ~chain in
  let wide_inline = measure Octf.Scheduler.Inline ~build:wide_build ~iters:wide_iters in
  let wide_pool = measure Octf.Scheduler.Pool ~build:wide_build ~iters:wide_iters in
  let speedup = wide_inline /. wide_pool in
  Printf.printf
    "wide graph (%d branches of %d chained %dx%d matmuls):\n\
    \  inline: %8.2f ms/step\n\
    \  pool:   %8.2f ms/step   speedup %.2fx (%d worker domains, %d cores)\n%!"
    width chain dim dim (1000.0 *. wide_inline) (1000.0 *. wide_pool) speedup
    (Octf.Domain_pool.size ())
    (Domain.recommended_domain_count ());
  (* Null-op dispatch rate: the §5 microbenchmark, both policies. The
     pool pays a cross-domain round trip per op, so this bounds its
     per-dispatch overhead; the inline rate is the regression guard. *)
  let null_build () = build_null_graph null_n in
  let null_inline = measure Octf.Scheduler.Inline ~build:null_build ~iters:null_iters in
  let null_pool = measure Octf.Scheduler.Pool ~build:null_build ~iters:null_iters in
  let rate sec_per_step = float_of_int null_n /. sec_per_step in
  Printf.printf
    "null-op dispatch (%d ops/step):\n\
    \  inline: %8.2f M ops/s\n\
    \  pool:   %8.2f M ops/s\n%!"
    null_n
    (rate null_inline /. 1e6)
    (rate null_pool /. 1e6);
  (* Machine-readable record for cross-PR trajectory tracking. *)
  let json =
    Printf.sprintf
      "{\"bench\":\"dispatch\",\"smoke\":%b,\"cores\":%d,\"pool_workers\":%d,\n\
       \"wide_graph\":{\"width\":%d,\"dim\":%d,\"chain\":%d,\n\
      \  \"inline_ms_per_step\":%.3f,\"pool_ms_per_step\":%.3f,\"speedup\":%.3f},\n\
       \"null_op\":{\"ops_per_step\":%d,\n\
      \  \"inline_ops_per_sec\":%.0f,\"pool_ops_per_sec\":%.0f}}\n"
      (smoke : bool)
      (Domain.recommended_domain_count ())
      (Octf.Domain_pool.size ())
      width dim chain
      (1000.0 *. wide_inline)
      (1000.0 *. wide_pool)
      speedup null_n (rate null_inline) (rate null_pool)
  in
  let oc = open_out "BENCH_dispatch.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_dispatch.json\n%!"

(* ------------------------------------------------------------------ *)
(* Figure 6: null-step synchronous replication baseline                *)
(* ------------------------------------------------------------------ *)

let fig6_row name workload workers =
  let cfg =
    {
      (Sim.default ~workload) with
      Sim.num_workers = workers;
      num_ps = 16;
      coordination = Sim.Sync { backup = 0 };
    }
  in
  let r = Sim.run cfg ~steps:60 in
  Printf.printf
    "%-18s %4d workers: median %8.1f ms  (p10 %8.1f, p90 %8.1f)\n%!" name
    workers
    (1000.0 *. r.Sim.summary.Stats.median)
    (1000.0 *. r.Sim.summary.Stats.p10)
    (1000.0 *. r.Sim.summary.Stats.p90)

let fig6 () =
  section "Figure 6: null-step time vs workers, 16 PS tasks, synchronous";
  let worker_counts = [ 1; 5; 10; 25; 50; 100 ] in
  List.iter (fig6_row "scalar" W.null_scalar) worker_counts;
  List.iter (fig6_row "dense 100MB" (W.null_dense ~mb:100.0)) worker_counts;
  List.iter (fig6_row "dense 1GB" (W.null_dense ~mb:1024.0)) worker_counts;
  (* The embedding row width is fixed by the model; the 1GB and 16GB
     curves differ only in total (resident) size, which is the paper's
     point: sparse step times do not vary with embedding size. *)
  List.iter
    (fig6_row "sparse 1GB" (W.null_sparse ~gb:1.0 ~entries:32 ~dim:8192))
    worker_counts;
  List.iter
    (fig6_row "sparse 16GB" (W.null_sparse ~gb:16.0 ~entries:32 ~dim:8192))
    worker_counts;
  Printf.printf
    "(paper: scalar 1.8->8.8 ms, dense 100MB 147->613 ms, dense 1GB \
     1.01->7.16 s, sparse 5-20 ms flat)\n%!"

(* ------------------------------------------------------------------ *)
(* Figure 7: Inception-v3 scaling, async vs sync                       *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  section "Figure 7: Inception-v3 training, 17 PS tasks";
  let workload = W.inception_v3 ~batch:32 in
  let counts = [ 1; 25; 50; 100; 200 ] in
  Printf.printf "%8s %12s %12s | %28s | %28s\n" "workers" "async img/s"
    "sync img/s" "async ms (med/p10/p90)" "sync ms (med/p10/p90)";
  List.iter
    (fun n ->
      let base =
        { (Sim.default ~workload) with Sim.num_workers = n; num_ps = 17 }
      in
      let a = Sim.run { base with Sim.coordination = Sim.Async } ~steps:40 in
      let s =
        Sim.run { base with Sim.coordination = Sim.Sync { backup = 0 } }
          ~steps:40
      in
      let fmt (r : Sim.result) =
        Printf.sprintf "%8.0f/%8.0f/%8.0f"
          (1000.0 *. r.Sim.summary.Stats.median)
          (1000.0 *. r.Sim.summary.Stats.p10)
          (1000.0 *. r.Sim.summary.Stats.p90)
      in
      Printf.printf "%8d %12.0f %12.0f | %s | %s\n%!" n a.Sim.throughput
        s.Sim.throughput (fmt a) (fmt s))
    counts;
  Printf.printf
    "(paper: throughput grows to ~2300 img/s at 200 workers with \
     diminishing returns; sync median ~10%% above async, much worse at \
     p90)\n%!"

(* ------------------------------------------------------------------ *)
(* Figure 8: backup workers                                            *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  section "Figure 8: backup workers, 50-worker sync Inception-v3";
  let workload = W.inception_v3 ~batch:32 in
  let base_median = ref 0.0 in
  Printf.printf "%8s %14s %18s\n" "backup" "step (s)" "norm. speedup";
  List.iter
    (fun b ->
      let cfg =
        {
          (Sim.default ~workload) with
          Sim.num_workers = 50 + b;
          num_ps = 17;
          coordination = Sim.Sync { backup = b };
        }
      in
      let r = Sim.run cfg ~steps:400 in
      let med = r.Sim.summary.Stats.median in
      if b = 0 then base_median := med;
      let speedup = !base_median /. med *. (50.0 /. float_of_int (50 + b)) in
      Printf.printf "%8d %14.2f %17.1f%%\n%!" b med
        ((speedup -. 1.0) *. 100.0))
    [ 0; 1; 2; 3; 4; 5 ];
  Printf.printf
    "(paper: step time falls to 1.93 s at b=4; normalized speedup peaks \
     ~9.5%% at b=3)\n%!"

(* ------------------------------------------------------------------ *)
(* Figure 9: language model, full vs sampled softmax                   *)
(* ------------------------------------------------------------------ *)

let fig9 () =
  section "Figure 9: LSTM-512-512 words/sec vs PS tasks";
  Printf.printf "softmax reduction with 512 samples: %.0fx\n"
    (Lm.softmax_reduction (Lm.Sampled 512));
  let ps_counts = [ 1; 2; 4; 8; 16; 32 ] in
  let worker_counts = [ 4; 32; 256 ] in
  List.iter
    (fun softmax ->
      let name =
        match softmax with
        | Lm.Full -> "full softmax"
        | Lm.Sampled s -> Printf.sprintf "sampled-%d softmax" s
      in
      let workload = Lm.workload ~softmax ~batch:64 ~unroll:20 in
      Printf.printf "%-22s" name;
      List.iter (fun w -> Printf.printf "%10d wkrs" w) worker_counts;
      print_newline ();
      List.iter
        (fun ps ->
          Printf.printf "  %2d PS:              " ps;
          List.iter
            (fun workers ->
              let cfg =
                {
                  (Sim.default ~workload) with
                  Sim.num_workers = workers;
                  num_ps = ps;
                  coordination = Sim.Async;
                }
              in
              let r = Sim.run cfg ~steps:20 in
              Printf.printf "%11.0fk" (r.Sim.throughput /. 1000.0))
            worker_counts;
          print_newline ())
        ps_counts)
    [ Lm.Full; Lm.Sampled 512 ];
  Printf.printf
    "(paper: full-softmax throughput scales with PS tasks — adding a 2nd \
     PS beats going 4->32 or 32->256 workers; sampled softmax is far \
     higher and saturates as the LSTM dominates)\n%!"

(* ------------------------------------------------------------------ *)
(* Ablations called out in DESIGN.md                                   *)
(* ------------------------------------------------------------------ *)

let softmax_ablation () =
  section
    "Ablation: sampled-softmax sample size (words/sec, 8 PS, 32 workers)";
  List.iter
    (fun s ->
      let workload =
        Lm.workload ~softmax:(Lm.Sampled s) ~batch:64 ~unroll:20
      in
      let cfg =
        {
          (Sim.default ~workload) with
          Sim.num_workers = 32;
          num_ps = 8;
          coordination = Sim.Async;
        }
      in
      let r = Sim.run cfg ~steps:20 in
      Printf.printf "  %5d samples (%5.0fx reduction): %9.0f words/s\n%!" s
        (Lm.softmax_reduction (Lm.Sampled s))
        r.Sim.throughput)
    [ 64; 128; 256; 512; 1024; 4096 ]

let shard_ablation () =
  section "Ablation: embedding shards under Zipf access (real execution)";
  let vocab = 50_000 and dim = 32 and batch = 256 in
  let rng = Rng.create 11 in
  let ids = Array.init batch (fun _ -> Rng.zipf rng ~n:vocab ~s:1.1) in
  List.iter
    (fun shards ->
      let b = B.create () in
      let store = Octf_nn.Var_store.create b in
      let emb =
        Octf_nn.Embedding.create store ~name:"emb" ~vocab ~dim
          ~num_shards:shards ()
      in
      let ids_ph = B.placeholder b Dtype.I32 in
      let looked = Octf_nn.Embedding.lookup emb b ids_ph in
      let sum = B.reduce_sum b looked in
      let init = Octf_nn.Var_store.init_op store in
      let session = Octf.Session.create (B.graph b) in
      Octf.Session.run_unit session [ init ];
      let feed = [ (ids_ph, Tensor.of_int_array [| batch |] ids) ] in
      ignore (Octf.Session.run ~feeds:feed session [ sum ]);
      let t0 = Unix.gettimeofday () in
      let iters = 50 in
      for _ = 1 to iters do
        ignore (Octf.Session.run ~feeds:feed session [ sum ])
      done;
      let dt = Unix.gettimeofday () -. t0 in
      Printf.printf "  %2d shards: %8.0f lookups/s\n%!" shards
        (float_of_int (iters * batch) /. dt))
    [ 1; 2; 4; 8; 16 ]

(* ------------------------------------------------------------------ *)
(* Intra-op kernel throughput: matmul / conv2d / elementwise           *)
(* ------------------------------------------------------------------ *)

(* Mean seconds per call after one warm-up (which also spins up the
   domain pool on the first parallel shard). *)
let time_kernel ~iters f =
  ignore (f ());
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    ignore (f ())
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int iters

let kernels () =
  section "Intra-op kernel throughput (GFLOP/s by thread budget)";
  let smoke = smoke_mode () in
  let iters = if smoke then 2 else 3 in
  let thread_counts = [ 1; 2; 4; 8 ] in
  let saved_threads = Parallel.threads () in
  Fun.protect ~finally:(fun () -> Parallel.set_threads saved_threads)
  @@ fun () ->
  let rng = Rng.create 11 in
  (* matmul: one dim x dim square product per call. *)
  let mm_dim = if smoke then 96 else 512 in
  let a = Tensor.uniform rng [| mm_dim; mm_dim |] ~lo:(-1.0) ~hi:1.0 in
  let b = Tensor.uniform rng [| mm_dim; mm_dim |] ~lo:(-1.0) ~hi:1.0 in
  let mm_flops = 2.0 *. (float_of_int mm_dim ** 3.0) in
  let mm_series =
    List.map
      (fun t ->
        Parallel.set_threads t;
        let s = time_kernel ~iters (fun () -> Tensor_ops.matmul a b) in
        let gflops = mm_flops /. s /. 1e9 in
        Printf.printf "matmul %dx%d, %d threads: %7.2f ms  %6.2f GFLOP/s\n%!"
          mm_dim mm_dim t (1000.0 *. s) gflops;
        (t, gflops))
      thread_counts
  in
  (* conv2d: NHWC input, HWIO filter, SAME padding. *)
  let cv_batch = if smoke then 2 else 8 in
  let cv_size = if smoke then 16 else 32 in
  let cv_ic = if smoke then 8 else 16 in
  let cv_oc = if smoke then 16 else 32 in
  let img =
    Tensor.uniform rng [| cv_batch; cv_size; cv_size; cv_ic |] ~lo:(-1.0)
      ~hi:1.0
  in
  let filt = Tensor.uniform rng [| 3; 3; cv_ic; cv_oc |] ~lo:(-1.0) ~hi:1.0 in
  let cv_flops =
    2.0
    *. float_of_int (cv_batch * cv_size * cv_size * cv_oc * 3 * 3 * cv_ic)
  in
  let cv_series =
    List.map
      (fun t ->
        Parallel.set_threads t;
        let s =
          time_kernel ~iters (fun () ->
              Tensor_ops.conv2d img filt ~strides:(1, 1) ~padding:Tensor_ops.Same)
        in
        let gflops = cv_flops /. s /. 1e9 in
        Printf.printf
          "conv2d %dx%dx%dx%d *3x3x%d, %d threads: %7.2f ms  %6.2f GFLOP/s\n%!"
          cv_batch cv_size cv_size cv_ic cv_oc t (1000.0 *. s) gflops;
        (t, gflops))
      thread_counts
  in
  (* elementwise: broadcast-free map2 over a large buffer. *)
  let ew_n = if smoke then 1 lsl 18 else 1 lsl 22 in
  let x = Tensor.uniform rng [| ew_n |] ~lo:(-1.0) ~hi:1.0 in
  let y = Tensor.uniform rng [| ew_n |] ~lo:(-1.0) ~hi:1.0 in
  let ew_series =
    List.map
      (fun t ->
        Parallel.set_threads t;
        let s = time_kernel ~iters (fun () -> Tensor_ops.add x y) in
        let melems = float_of_int ew_n /. s /. 1e6 in
        Printf.printf "elementwise add %d elems, %d threads: %7.2f ms  %8.1f M elems/s\n%!"
          ew_n t (1000.0 *. s) melems;
        (t, melems))
      thread_counts
  in
  (* Fused elementwise chain: a 12-op chain of cheap ops over a large
     buffer. Unfused it makes twelve passes over memory; the fuse pass
     collapses the eleven unpinned ops into one FusedElementwise kernel
     (the fetched root must materialize), so the fused step is two
     passes. Sessions get separate graph builds: optimizer passes
     rewrite the graph in place. *)
  let fc_n = if smoke then 1 lsl 18 else 1 lsl 22 in
  let fc_input = Tensor.uniform rng [| fc_n |] ~lo:(-1.0) ~hi:1.0 in
  let build_fused_chain () =
    let b = B.create () in
    let x = B.placeholder b Dtype.F32 in
    let c v = B.const_f b v in
    let o = ref (B.mul b x (c 0.5)) in
    o := B.add b !o (c 1.0);
    o := B.neg b !o;
    o := B.maximum b !o (c (-2.0));
    o := B.sub b !o (c 0.25);
    o := B.mul b !o (c 1.5);
    o := B.minimum b !o (c 3.0);
    o := B.add b !o (c 0.125);
    o := B.neg b !o;
    o := B.abs b !o;
    o := B.sub b !o (c 0.5);
    o := B.mul b !o (c 0.75);
    (b, x, !o)
  in
  let fc_ops = 12 in
  let ub, ux, uy = build_fused_chain () in
  let unfused_session =
    Octf.Session.create
      ~config:(Octf.Session.Config.v ~passes:[] ())
      (B.graph ub)
  in
  let fb, fx, fy = build_fused_chain () in
  let fused_session =
    Octf.Session.create
      ~config:
        (Octf.Session.Config.v
           ~passes:[ Octf.Graph_optimizer.Fuse; Octf.Graph_optimizer.Prune ]
           ())
      (B.graph fb)
  in
  (* Mechanism check before timing: one fused kernel stands in for the
     chain and the fetch is bit-identical to the unfused run. *)
  let stats_of session x y =
    let options =
      Octf.Session.Run_options.v
        ~feeds:[ (x, fc_input) ]
        ~collect_stats:true ()
    in
    let fetched, md = Octf.Session.run_with_metadata ~options session [ y ] in
    (List.hd fetched, Option.get md.Octf.Session.Run_metadata.step_stats)
  in
  let unfused_out, _ = stats_of unfused_session ux uy in
  let fused_out, fused_stats = stats_of fused_session fx fy in
  let fused_kernels =
    List.length
      (List.filter
         (fun ns -> ns.Octf.Step_stats.op_type = "FusedElementwise")
         fused_stats.Octf.Step_stats.nodes)
  in
  let fused_group =
    match Octf.Step_stats.fusion_groups fused_stats with
    | [ (_, n, _) ] -> n
    | _ -> 0
  in
  let fc_identical = Tensor.equal unfused_out fused_out in
  Printf.printf
    "fused chain: %d ops -> %d fused kernel(s) covering %d ops, \
     bit-identical %b\n%!"
    fc_ops fused_kernels fused_group fc_identical;
  let fc_series =
    List.map
      (fun t ->
        Parallel.set_threads t;
        let unfused_s =
          time_kernel ~iters (fun () ->
              Octf.Session.run ~feeds:[ (ux, fc_input) ] unfused_session [ uy ])
        in
        let fused_s =
          time_kernel ~iters (fun () ->
              Octf.Session.run ~feeds:[ (fx, fc_input) ] fused_session [ fy ])
        in
        let speedup = unfused_s /. fused_s in
        Printf.printf
          "fused chain %d elems, %d threads: unfused %7.2f ms  fused %7.2f \
           ms  speedup %.2fx\n%!"
          fc_n t (1000.0 *. unfused_s) (1000.0 *. fused_s) speedup;
        (t, (unfused_s, fused_s, speedup)))
      thread_counts
  in
  let fc_best =
    List.fold_left (fun acc (_, (_, _, s)) -> Float.max acc s) 0.0 fc_series
  in
  (* Transposed-variant regression guard: every variant is packed onto
     the same blocked kernel, so none may cost more than a small factor
     over the plain path (it was ~10x before packing). *)
  Parallel.set_threads saved_threads;
  let variant ta tb =
    time_kernel ~iters (fun () ->
        Tensor_ops.matmul ~transpose_a:ta ~transpose_b:tb a b)
  in
  let plain = variant false false in
  let t_a = variant true false in
  let t_b = variant false true in
  let t_ab = variant true true in
  let worst = List.fold_left Float.max t_a [ t_b; t_ab ] in
  let ratio = worst /. plain in
  Printf.printf
    "matmul variants (ms): plain %.2f, T_a %.2f, T_b %.2f, T_ab %.2f  \
     (worst/plain %.2fx)\n%!"
    (1000.0 *. plain) (1000.0 *. t_a) (1000.0 *. t_b) (1000.0 *. t_ab) ratio;
  let series_json fmt series =
    String.concat ","
      (List.map (fun (t, v) -> Printf.sprintf "{\"threads\":%d,%s}" t (fmt v))
         series)
  in
  let json =
    Printf.sprintf
      "{\"bench\":\"kernels\",\"smoke\":%b,\"cores\":%d,\n\
       \"matmul\":{\"dim\":%d,\"series\":[%s]},\n\
       \"conv2d\":{\"batch\":%d,\"size\":%d,\"in_channels\":%d,\"out_channels\":%d,\"series\":[%s]},\n\
       \"elementwise\":{\"elems\":%d,\"series\":[%s]},\n\
       \"fused_chain\":{\"elems\":%d,\"chain_ops\":%d,\"fused_kernels\":%d,\"fused_group\":%d,\"bit_identical\":%b,\"best_speedup\":%.2f,\"series\":[%s]},\n\
       \"matmul_variants\":{\"plain_ms\":%.3f,\"transpose_a_ms\":%.3f,\"transpose_b_ms\":%.3f,\"transpose_both_ms\":%.3f,\"worst_ratio\":%.3f}}\n"
      (smoke : bool)
      (Domain.recommended_domain_count ())
      mm_dim
      (series_json (Printf.sprintf "\"gflops\":%.3f") mm_series)
      cv_batch cv_size cv_ic cv_oc
      (series_json (Printf.sprintf "\"gflops\":%.3f") cv_series)
      ew_n
      (series_json (Printf.sprintf "\"melems_per_sec\":%.1f") ew_series)
      fc_n fc_ops fused_kernels fused_group fc_identical fc_best
      (series_json
         (fun (unfused_s, fused_s, speedup) ->
           Printf.sprintf
             "\"unfused_ms\":%.3f,\"fused_ms\":%.3f,\"speedup\":%.2f"
             (1000.0 *. unfused_s) (1000.0 *. fused_s) speedup)
         fc_series)
      (1000.0 *. plain) (1000.0 *. t_a) (1000.0 *. t_b) (1000.0 *. t_ab)
      ratio
  in
  let oc = open_out "BENCH_kernels.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_kernels.json\n%!";
  if ratio > 4.0 then begin
    Printf.printf
      "FAIL: a transposed matmul variant is %.1fx slower than the plain \
       path (budget 4x)\n%!"
      ratio;
    exit 1
  end;
  (* Fusion guards: mechanism always (one fused kernel standing in for
     >= 10 ops, bit-identical fetch), and a speedup floor — in smoke
     mode merely faster than unfused; at full size the single-pass
     kernel must beat twelve memory passes by 3x. *)
  if fused_kernels <> 1 || fused_group < 10 || not fc_identical then begin
    Printf.printf
      "FAIL: fused chain mechanism broken: %d fused kernel(s) covering %d \
       ops, bit-identical %b (want 1 kernel, >=10 ops, identical)\n%!"
      fused_kernels fused_group fc_identical;
    exit 1
  end;
  let fc_floor = if smoke then 1.0 else 3.0 in
  if fc_best <= fc_floor then begin
    Printf.printf
      "FAIL: fused chain best speedup %.2fx does not clear the %.1fx \
       floor\n%!"
      fc_best fc_floor;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Memory planning: peak live tensor bytes, planning on vs off         *)
(* ------------------------------------------------------------------ *)

(* One MLP training run under a fixed planning mode. The input batch is
   a graph constant (feeding would pin the endpoint and change what the
   planner may drop), and the Inline scheduler keeps the peak
   deterministic. Returns (peak live bytes, steps/sec). *)
let memory_run ~planning ~steps ~batch ~hidden =
  let module Vs = Octf_nn.Var_store in
  Octf.Metrics.reset Octf.Metrics.default;
  Octf_tensor.Buffer_pool.clear ();
  let rng = Rng.create 3 in
  let b = B.create () in
  let store = Vs.create b in
  let x =
    B.const b (Tensor.uniform rng [| batch; hidden |] ~lo:(-1.0) ~hi:1.0)
  in
  let h1 =
    Octf_nn.Layers.dense store ~activation:`Relu ~name:"fc1" ~in_dim:hidden
      ~out_dim:hidden x
  in
  let h2 =
    Octf_nn.Layers.dense store ~activation:`Relu ~name:"fc2" ~in_dim:hidden
      ~out_dim:hidden h1
  in
  let logits =
    Octf_nn.Layers.dense store ~name:"fc3" ~in_dim:hidden ~out_dim:10 h2
  in
  let loss = B.reduce_mean b (B.square b logits) in
  let train_op = Octf_train.Optimizer.minimize store ~lr:0.01 ~loss () in
  let session =
    Octf.Session.create
      ~config:
        (Octf.Session.Config.v ~scheduler:Octf.Scheduler.Inline
           ~memory_planning:planning ())
      (B.graph b)
  in
  Octf.Session.run_unit session [ Vs.init_op store ];
  (* Warm-up pays plan compilation; it touches the same peak the steady
     state does, so measuring from here is safe. *)
  ignore (Octf.Session.run session [ loss; train_op ]);
  let t0 = Unix.gettimeofday () in
  for _ = 1 to steps do
    ignore (Octf.Session.run session [ loss; train_op ])
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let peak =
    match
      Octf.Metrics.find_value Octf.Metrics.default "octf_mem_peak_bytes"
    with
    | Some v -> int_of_float v
    | None -> 0
  in
  (peak, float_of_int steps /. dt)

let memory () =
  section "Memory planning: MLP peak live tensor bytes, planning on vs off";
  let smoke = smoke_mode () in
  let steps = if smoke then 5 else 30 in
  let batch = if smoke then 32 else 128 in
  let hidden = if smoke then 64 else 256 in
  let off_peak, off_rate = memory_run ~planning:false ~steps ~batch ~hidden in
  let on_peak, on_rate = memory_run ~planning:true ~steps ~batch ~hidden in
  let reduction =
    if off_peak = 0 then 0.0
    else 1.0 -. (float_of_int on_peak /. float_of_int off_peak)
  in
  Printf.printf
    "MLP %dx%d batch %d, %d steps:\n\
    \  planning off: peak %9d bytes  %7.1f steps/s\n\
    \  planning on:  peak %9d bytes  %7.1f steps/s   (peak -%.1f%%)\n%!"
    hidden hidden batch steps off_peak off_rate on_peak on_rate
    (100.0 *. reduction);
  let json =
    Printf.sprintf
      "{\"bench\":\"memory\",\"smoke\":%b,\n\
       \"model\":{\"hidden\":%d,\"batch\":%d,\"steps\":%d},\n\
       \"planning_off\":{\"peak_live_bytes\":%d,\"steps_per_sec\":%.2f},\n\
       \"planning_on\":{\"peak_live_bytes\":%d,\"steps_per_sec\":%.2f},\n\
       \"peak_reduction\":%.3f}\n"
      (smoke : bool)
      hidden batch steps off_peak off_rate on_peak on_rate reduction
  in
  let oc = open_out "BENCH_memory.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_memory.json\n%!";
  if reduction < 0.30 then begin
    Printf.printf
      "FAIL: memory planning cut peak live bytes by only %.1f%% (budget \
       30%%)\n%!"
      (100.0 *. reduction);
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Pipelined execution: K steps in flight against a straggler reader   *)
(* ------------------------------------------------------------------ *)

module Pipe = Octf_data.Pipeline

(* One trainer step dequeues a batch from a prefetching input pipeline,
   passes it through an Identity named "slow_reader" that the fault
   injector turns into a persistent straggler, then a matmul and an
   AssignAdd update. At K = 1 every straggle serializes with compute
   and updates; at K > 1 in-flight steps overlap their straggles, so
   steps/sec must scale with the pipeline depth. *)
let pipeline_run ~k ~steps ~delay_ms =
  let dim = 16 in
  let b = B.create () in
  let build_rng = Rng.create 11 in
  let x_in = B.placeholder b ~name:"x_in" ~shape:[| 4; dim |] Dtype.F32 in
  let pipe =
    Pipe.create b ~capacity:8 ~prefetch:4 ~name:"input"
      ~producers:[ x_in ] ()
  in
  let x = match Pipe.batch pipe with [ x ] -> x | _ -> assert false in
  let x = B.identity b ~name:"slow_reader" x in
  let v = B.variable b ~name:"acc" ~dtype:Dtype.F32 ~shape:[||] () in
  let init = B.assign b v (B.const_f b 0.0) in
  let w =
    B.const b (Tensor.uniform build_rng [| dim; 1 |] ~lo:(-1.0) ~hi:1.0)
  in
  let update = B.assign_add b v (B.reduce_sum b (B.matmul b x w)) in
  let session =
    Octf.Session.create
      ~config:(Octf.Session.Config.v ~max_in_flight:k ())
      (B.graph b)
  in
  Octf.Session.run_unit session [ init ];
  Octf.Fault_injector.install
    [
      Octf.Fault_injector.Slow_kernel
        { pattern = "slow_reader"; step = 0; ms = delay_ms };
    ];
  Fun.protect ~finally:Octf.Fault_injector.reset @@ fun () ->
  let feed i =
    let rng = Rng.create (1000 + i) in
    [ (x_in, Tensor.uniform rng [| 4; dim |] ~lo:(-1.0) ~hi:1.0) ]
  in
  let fillers = Pipe.start_fillers pipe session ~threads:2 ~steps ~feed () in
  let t0 = Unix.gettimeofday () in
  let handles =
    List.init steps (fun _ -> Octf.Session.run_async session [ update ])
  in
  List.iter (fun h -> ignore (Octf.Session.wait h)) handles;
  let dt = Unix.gettimeofday () -. t0 in
  Pipe.stop_fillers fillers;
  float_of_int steps /. dt

let pipeline () =
  section "Pipelined execution: steps/sec vs pipeline depth, slow reader";
  let smoke = smoke_mode () in
  let steps = if smoke then 8 else 24 in
  let delay_ms = if smoke then 5.0 else 10.0 in
  let rate k = pipeline_run ~k ~steps ~delay_ms in
  let k1 = rate 1 in
  let k2 = rate 2 in
  let k4 = rate 4 in
  let speedup = k4 /. k1 in
  Printf.printf
    "%d steps, %.0f ms straggler on the input reader:\n\
    \  K=1 %7.2f steps/s\n\
    \  K=2 %7.2f steps/s\n\
    \  K=4 %7.2f steps/s   (K=4 / K=1 = %.2fx)\n%!"
    steps delay_ms k1 k2 k4 speedup;
  let json =
    Printf.sprintf
      "{\"bench\":\"pipeline\",\"smoke\":%b,\n\
       \"workload\":{\"steps\":%d,\"reader_delay_ms\":%.1f},\n\
       \"k1\":{\"steps_per_sec\":%.2f},\n\
       \"k2\":{\"steps_per_sec\":%.2f},\n\
       \"k4\":{\"steps_per_sec\":%.2f},\n\
       \"speedup_k4_over_k1\":%.3f}\n"
      (smoke : bool)
      steps delay_ms k1 k2 k4 speedup
  in
  let oc = open_out "BENCH_pipeline.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_pipeline.json\n%!";
  if speedup < 1.5 then begin
    Printf.printf
      "FAIL: K=4 pipeline gave only %.2fx over K=1 (budget 1.5x)\n%!"
      speedup;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Serving: micro-batched inference vs batch-size-1                    *)
(* ------------------------------------------------------------------ *)

(* The TensorFlow-Serving workload: many concurrent single-example
   clients against a frozen model. The served model is the repo's
   miniature MNIST convnet (6x6x1 input, conv-pool-conv-pool-fc) so
   the per-step fixed cost — executor dispatch, one kernel invocation
   per node, batcher wakeup — dominates per-row arithmetic, which is
   exactly the regime request coalescing is for. Each client keeps
   [depth] requests in flight, as a serving frontend multiplexing its
   own callers would; both legs use the identical harness and differ
   only in [max_batch_size]. *)

module Serving = Octf_serving.Serving

type serving_leg = {
  sl_rps : float;
  sl_p50_ms : float;
  sl_p99_ms : float;
  sl_mean_batch : float;
  sl_max_batch : int;
}

let serving_run ~session ~inputs ~outputs ~examples ~max_batch ~clients
    ~depth ~requests =
  let server =
    Serving.create ~name:"bench" ~max_batch_size:max_batch
      ~max_queue_delay:0.0005 ~queue_capacity:1024 ~session ~inputs
      ~outputs ()
  in
  let nex = Array.length examples in
  let lats = Array.make (clients * requests) 0.0 in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init clients (fun ci ->
        Thread.create
          (fun () ->
            let inflight = Queue.create () in
            let drain () =
              match Queue.take_opt inflight with
              | None -> ()
              | Some (ri, ts, req) -> (
                  match Serving.await req with
                  | Ok _ ->
                      lats.((ci * requests) + ri) <-
                        Unix.gettimeofday () -. ts
                  | Error _ -> ())
            in
            for ri = 0 to requests - 1 do
              if Queue.length inflight >= depth then drain ();
              let ts = Unix.gettimeofday () in
              match Serving.submit server examples.((ci + ri) mod nex) with
              | Ok req -> Queue.add (ri, ts, req) inflight
              | Error _ -> Thread.delay 0.001
            done;
            while Queue.length inflight > 0 do
              drain ()
            done)
          ())
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let stats = Serving.stats server in
  Serving.shutdown server;
  let sorted = Array.copy lats in
  Array.sort compare sorted;
  let pct p =
    let n = Array.length sorted in
    1e3 *. sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))
  in
  {
    sl_rps = float_of_int stats.Serving.served /. wall;
    sl_p50_ms = pct 0.5;
    sl_p99_ms = pct 0.99;
    sl_mean_batch =
      float_of_int stats.Serving.served
      /. float_of_int (max 1 stats.Serving.batches);
    sl_max_batch = stats.Serving.max_batch;
  }

(* Median-of-trials per leg: the host is a shared VM with measurable
   CPU steal, and the batch-1 leg (16x more scheduler transitions per
   request) is hit hardest by it. *)
let serving_median legs =
  let a = Array.of_list legs in
  Array.sort (fun l l' -> compare l.sl_rps l'.sl_rps) a;
  a.(Array.length a / 2)

let serving_cnn ~train_steps =
  let module Vs = Octf_nn.Var_store in
  let module L = Octf_nn.Layers in
  let image_size = 6 and classes = 4 in
  let b = B.create () in
  let store = Vs.create b in
  let pixels = B.placeholder b ~name:"pixels" Dtype.F32 in
  let labels = B.placeholder b ~name:"labels" Dtype.I32 in
  let conv1 =
    L.conv2d store ~activation:`Relu ~name:"conv1" ~in_channels:1
      ~out_channels:2 ~ksize:(3, 3) pixels
  in
  let pool1 = L.max_pool2d b ~ksize:(2, 2) conv1 in
  let conv2 =
    L.conv2d store ~activation:`Relu ~name:"conv2" ~in_channels:2
      ~out_channels:4 ~ksize:(3, 3) pool1
  in
  let pool2 = L.max_pool2d b ~ksize:(2, 2) conv2 in
  (* 6x6 -> 3x3 (valid pool) -> 3x3 (same conv) -> 1x1, then a 1x1
     network-in-network projection before the classifier head. *)
  let conv3 =
    L.conv2d store ~activation:`Relu ~name:"conv3" ~in_channels:4
      ~out_channels:8 ~ksize:(1, 1) pool2
  in
  let flat = L.flatten b ~features:8 conv3 in
  let hidden =
    L.dense store ~activation:`Relu ~name:"fc1" ~in_dim:8 ~out_dim:16 flat
  in
  let logits =
    L.dense store ~name:"logits" ~in_dim:16 ~out_dim:classes hidden
  in
  let loss =
    Octf_nn.Losses.sparse_softmax_cross_entropy_mean b ~num_classes:classes
      ~logits ~labels
  in
  let train_op = Octf_train.Optimizer.minimize store ~lr:0.01 ~loss () in
  let session = Octf.Session.create (B.graph b) in
  Octf.Session.run_unit session [ Vs.init_op store ];
  let rng = Rng.create 5 in
  for _ = 1 to train_steps do
    let imgs =
      Octf_data.Synthetic.image_batch rng ~batch:16 ~size:image_size
        ~channels:1 ~classes
    in
    Octf.Session.run_unit
      ~feeds:
        [
          (pixels, imgs.Octf_data.Synthetic.pixels);
          (labels, imgs.Octf_data.Synthetic.labels);
        ]
      session [ train_op ]
  done;
  let frozen =
    Serving.freeze_session ~inputs:[ pixels ] ~outputs:[ logits ] session
  in
  let ex_rng = Rng.create 9 in
  let examples =
    Array.init 32 (fun _ ->
        let imgs =
          Octf_data.Synthetic.image_batch ex_rng ~batch:1 ~size:image_size
            ~channels:1 ~classes
        in
        [
          Tensor.reshape imgs.Octf_data.Synthetic.pixels
            [| image_size; image_size; 1 |];
        ])
  in
  (frozen, [ pixels ], [ logits ], examples)

let serving_lstm ~train_steps =
  let module Vs = Octf_nn.Var_store in
  let units = 32 and input_dim = 16 and batch = 16 in
  let b = B.create () in
  let store = Vs.create b in
  let cell = Octf_nn.Lstm.cell store ~name:"cell" ~input_dim ~units in
  let x = B.placeholder b ~name:"x" Dtype.F32 in
  let h = B.placeholder b ~name:"h" Dtype.F32 in
  let c = B.placeholder b ~name:"c" Dtype.F32 in
  let h', c' = Octf_nn.Lstm.step cell b ~x ~h ~c in
  let loss = B.reduce_mean b (B.square b h') in
  let train_op = Octf_train.Optimizer.minimize store ~lr:0.05 ~loss () in
  let session = Octf.Session.create (B.graph b) in
  Octf.Session.run_unit session [ Vs.init_op store ];
  let rng = Rng.create 7 in
  for _ = 1 to train_steps do
    let xs = Tensor.uniform rng [| batch; input_dim |] ~lo:(-1.0) ~hi:1.0 in
    let zeros = Tensor.zeros Dtype.F32 [| batch; units |] in
    Octf.Session.run_unit
      ~feeds:[ (x, xs); (h, zeros); (c, zeros) ]
      session [ train_op ]
  done;
  let frozen =
    Serving.freeze_session ~inputs:[ x; h; c ] ~outputs:[ h'; c' ] session
  in
  let ex_rng = Rng.create 9 in
  let examples =
    Array.init 32 (fun _ ->
        [
          Tensor.uniform ex_rng [| input_dim |] ~lo:(-1.0) ~hi:1.0;
          Tensor.zeros Dtype.F32 [| units |];
          Tensor.zeros Dtype.F32 [| units |];
        ])
  in
  (frozen, [ x; h; c ], [ h'; c' ], examples)

let serving () =
  section "Serving: micro-batched inference vs batch-size-1, 8 clients";
  let smoke = smoke_mode () in
  let train_steps = if smoke then 3 else 10 in
  let requests = if smoke then 40 else 300 in
  let trials = if smoke then 1 else 5 in
  let clients = 8 and depth = 8 in
  let session, inputs, outputs, examples = serving_cnn ~train_steps in
  let leg max_batch =
    serving_run ~session ~inputs ~outputs ~examples ~max_batch ~clients
      ~depth ~requests
  in
  (* Alternate the legs so a noisy-neighbour burst lands on both. *)
  let b1 = ref [] and mb = ref [] in
  for _ = 1 to trials do
    b1 := leg 1 :: !b1;
    mb := leg 32 :: !mb
  done;
  let b1 = serving_median !b1 and mb = serving_median !mb in
  let speedup = mb.sl_rps /. b1.sl_rps in
  Printf.printf
    "MNIST convnet (6x6 miniature), %d clients x %d requests, depth %d:\n\
    \  batch-size-1 %8.0f req/s   p50 %5.2f ms  p99 %5.2f ms\n\
    \  micro-batch  %8.0f req/s   p50 %5.2f ms  p99 %5.2f ms  (mean \
     batch %.1f, max %d)\n\
    \  speedup %.2fx\n%!"
    clients requests depth b1.sl_rps b1.sl_p50_ms b1.sl_p99_ms mb.sl_rps
    mb.sl_p50_ms mb.sl_p99_ms mb.sl_mean_batch mb.sl_max_batch speedup;
  let lsession, linputs, loutputs, lexamples = serving_lstm ~train_steps in
  let lstm =
    serving_run ~session:lsession ~inputs:linputs ~outputs:loutputs
      ~examples:lexamples ~max_batch:32 ~clients ~depth ~requests
  in
  Printf.printf
    "LSTM cell (32 units):\n\
    \  micro-batch  %8.0f req/s   p50 %5.2f ms  p99 %5.2f ms  (mean \
     batch %.1f)\n%!"
    lstm.sl_rps lstm.sl_p50_ms lstm.sl_p99_ms lstm.sl_mean_batch;
  let json =
    Printf.sprintf
      "{\"bench\":\"serving\",\"smoke\":%b,\n\
       \"workload\":{\"model\":\"mnist_cnn_6x6\",\"clients\":%d,\
       \"requests_per_client\":%d,\"inflight_per_client\":%d,\
       \"max_batch\":32},\n\
       \"batch1\":{\"req_per_sec\":%.0f,\"p50_ms\":%.3f,\"p99_ms\":%.3f},\n\
       \"microbatch\":{\"req_per_sec\":%.0f,\"p50_ms\":%.3f,\
       \"p99_ms\":%.3f,\"mean_batch\":%.1f,\"max_batch\":%d},\n\
       \"speedup\":%.3f,\n\
       \"lstm\":{\"req_per_sec\":%.0f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,\
       \"mean_batch\":%.1f}}\n"
      (smoke : bool)
      clients requests depth b1.sl_rps b1.sl_p50_ms b1.sl_p99_ms mb.sl_rps
      mb.sl_p50_ms mb.sl_p99_ms mb.sl_mean_batch mb.sl_max_batch speedup
      lstm.sl_rps lstm.sl_p50_ms lstm.sl_p99_ms lstm.sl_mean_batch
  in
  let oc = open_out "BENCH_serving.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_serving.json\n%!";
  if smoke then begin
    if mb.sl_max_batch < 2 then begin
      Printf.printf "FAIL: serving smoke never coalesced a batch\n%!";
      exit 1
    end
  end
  else if speedup < 2.0 then begin
    Printf.printf
      "FAIL: micro-batching gave only %.2fx over batch-size-1 (budget \
       2.0x)\n%!"
      speedup;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Quantized inference: calibrate + rewrite + serve at int8 (§5)       *)
(* ------------------------------------------------------------------ *)

let quant_metric name =
  Option.value ~default:0.0
    (Octf.Metrics.find_value Octf.Metrics.default name)

(* An MNIST-style CNN sized so the quantized contractions dominate the
   step; returns the trained session plus everything the freeze /
   calibrate / evaluate loop needs. *)
let quant_cnn ~image_size ~train_steps =
  let module Vs = Octf_nn.Var_store in
  let module L = Octf_nn.Layers in
  let classes = 4 and batch = 16 in
  let b = B.create () in
  let store = Vs.create b in
  let pixels = B.placeholder b ~name:"pixels" Dtype.F32 in
  let labels = B.placeholder b ~name:"labels" Dtype.I32 in
  let conv1 =
    L.conv2d store ~activation:`Relu ~name:"conv1" ~in_channels:1
      ~out_channels:8 ~ksize:(3, 3) pixels
  in
  let pool1 = L.max_pool2d b ~ksize:(2, 2) conv1 in
  let conv2 =
    L.conv2d store ~activation:`Relu ~name:"conv2" ~in_channels:8
      ~out_channels:16 ~ksize:(3, 3) pool1
  in
  let pool2 = L.max_pool2d b ~ksize:(2, 2) conv2 in
  let side = image_size / 4 in
  let flat = L.flatten b ~features:(side * side * 16) pool2 in
  let hidden =
    L.dense store ~activation:`Relu ~name:"fc1"
      ~in_dim:(side * side * 16)
      ~out_dim:64 flat
  in
  let logits = L.dense store ~name:"logits" ~in_dim:64 ~out_dim:classes hidden in
  let loss =
    Octf_nn.Losses.sparse_softmax_cross_entropy_mean b ~num_classes:classes
      ~logits ~labels
  in
  let train_op =
    Octf_train.Optimizer.minimize store
      ~algorithm:Octf_train.Optimizer.adam_default ~lr:0.003 ~loss ()
  in
  let session = Octf.Session.create (B.graph b) in
  Octf.Session.run_unit session [ Vs.init_op store ];
  let rng = Rng.create 5 in
  for _ = 1 to train_steps do
    let imgs =
      Octf_data.Synthetic.image_batch rng ~batch ~size:image_size ~channels:1
        ~classes
    in
    Octf.Session.run_unit
      ~feeds:
        [
          (pixels, imgs.Octf_data.Synthetic.pixels);
          (labels, imgs.Octf_data.Synthetic.labels);
        ]
      session [ train_op ]
  done;
  (session, pixels, logits, [ conv1; conv2; hidden ], classes)

let quant_argmax t ~row ~cols =
  let best = ref 0 in
  for j = 1 to cols - 1 do
    if
      Tensor.flat_get_f t ((row * cols) + j)
      > Tensor.flat_get_f t ((row * cols) + !best)
    then best := j
  done;
  !best

let quant () =
  section "Quantized inference: int8 islands vs the float frozen graph";
  let smoke = smoke_mode () in
  let image_size = if smoke then 12 else 24 in
  let train_steps = if smoke then 5 else 30 in
  let eval_batches = if smoke then 8 else 40 in
  let trials = if smoke then 1 else 5 in
  let batch = 16 in
  let session, pixels, logits, calibrate_eps, classes =
    quant_cnn ~image_size ~train_steps
  in
  let float_frozen =
    Serving.freeze_session ~quantize:false ~inputs:[ pixels ]
      ~outputs:[ logits ] session
  in
  (* calibration: representative batches through the float frozen graph *)
  let cal = Octf.Quant_calibration.create () in
  let cal_rng = Rng.create 17 in
  for _ = 1 to 8 do
    let imgs =
      Octf_data.Synthetic.image_batch cal_rng ~batch ~size:image_size
        ~channels:1 ~classes
    in
    Octf.Quant_calibration.observe_step cal float_frozen
      ~feeds:[ (pixels, imgs.Octf_data.Synthetic.pixels) ]
      calibrate_eps
  done;
  let islands0 = quant_metric "octf_quant_islands_total" in
  let wf0 = quant_metric "octf_quant_weight_bytes_float_total" in
  let wc0 = quant_metric "octf_quant_weight_bytes_code_total" in
  let quant_frozen =
    Serving.freeze_session ~quantize:true
      ~ranges:(Octf.Quant_calibration.ranges cal)
      ~inputs:[ pixels ] ~outputs:[ logits ] session
  in
  let islands = quant_metric "octf_quant_islands_total" -. islands0 in
  let weight_bytes_float =
    quant_metric "octf_quant_weight_bytes_float_total" -. wf0
  in
  let weight_bytes_code =
    quant_metric "octf_quant_weight_bytes_code_total" -. wc0
  in
  let weight_ratio = weight_bytes_float /. Float.max 1.0 weight_bytes_code in
  (* fixed evaluation set, shared by the throughput and accuracy legs *)
  let eval_rng = Rng.create 23 in
  let eval =
    Array.init eval_batches (fun _ ->
        (Octf_data.Synthetic.image_batch eval_rng ~batch ~size:image_size
           ~channels:1 ~classes)
          .Octf_data.Synthetic.pixels)
  in
  let time_leg frozen =
    ignore (Octf.Session.run ~feeds:[ (pixels, eval.(0)) ] frozen [ logits ]);
    let t0 = Unix.gettimeofday () in
    Array.iter
      (fun px ->
        ignore (Octf.Session.run ~feeds:[ (pixels, px) ] frozen [ logits ]))
      eval;
    Unix.gettimeofday () -. t0
  in
  (* alternate legs across trials, take medians (shared-VM noise) *)
  let ft = ref [] and qt = ref [] in
  for _ = 1 to trials do
    ft := time_leg float_frozen :: !ft;
    qt := time_leg quant_frozen :: !qt
  done;
  let median l =
    let a = Array.of_list l in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let float_s = median !ft and quant_s = median !qt in
  let images = float_of_int (eval_batches * batch) in
  let float_rps = images /. float_s and quant_rps = images /. quant_s in
  let speedup = quant_rps /. float_rps in
  (* top-1 agreement between the two frozen graphs *)
  let agree = ref 0 in
  Array.iter
    (fun px ->
      let run s =
        List.hd (Octf.Session.run ~feeds:[ (pixels, px) ] s [ logits ])
      in
      let fl = run float_frozen and qu = run quant_frozen in
      for row = 0 to batch - 1 do
        if quant_argmax fl ~row ~cols:classes = quant_argmax qu ~row ~cols:classes
        then incr agree
      done)
    eval;
  let delta = 1.0 -. (float_of_int !agree /. images) in
  Printf.printf
    "MNIST convnet (%dx%d), %d eval batches of %d:\n\
    \  float frozen     %8.0f img/s\n\
    \  int8 quantized   %8.0f img/s   speedup %.2fx\n\
    \  islands %.0f, weight bytes %.0f -> %.0f (%.1fx smaller), top-1 \
     delta %.3f\n%!"
    image_size image_size eval_batches batch float_rps quant_rps speedup
    islands weight_bytes_float weight_bytes_code weight_ratio delta;
  let json =
    Printf.sprintf
      "{\"bench\":\"quant\",\"smoke\":%b,\n\
       \"workload\":{\"model\":\"mnist_cnn_%dx%d\",\"eval_batches\":%d,\
       \"batch\":%d},\n\
       \"float\":{\"img_per_sec\":%.0f},\n\
       \"quantized\":{\"img_per_sec\":%.0f,\"islands\":%.0f,\
       \"weight_bytes_float\":%.0f,\"weight_bytes_code\":%.0f,\
       \"weight_ratio\":%.2f},\n\
       \"speedup\":%.3f,\"top1_delta\":%.4f}\n"
      (smoke : bool)
      image_size image_size eval_batches batch float_rps quant_rps islands
      weight_bytes_float weight_bytes_code weight_ratio speedup delta
  in
  let oc = open_out "BENCH_quant.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_quant.json\n%!";
  (* Gate: a real throughput win, or the asserted mechanism — islands
     rewritten, the honest 4x weight cut, and accuracy intact. OCaml's
     safe-int inner loops keep int8 GEMM from beating vectorized float
     on every host, so the mechanism check is the portable floor. *)
  let mechanism_ok = islands >= 2.0 && weight_ratio >= 3.9 in
  if delta > 0.15 then begin
    Printf.printf "FAIL: quantized top-1 delta %.3f exceeds 0.15\n%!" delta;
    exit 1
  end;
  if (not mechanism_ok) && speedup < 1.3 then begin
    Printf.printf
      "FAIL: neither %.2fx speedup >= 1.3x nor mechanism (islands %.0f, \
       ratio %.1fx)\n%!"
      speedup islands weight_ratio;
    exit 1
  end

(* ------------------------------------------------------------------ *)

let all_experiments =
  [
    ("table1", table1);
    ("dispatch", dispatch_bechamel);
    ("dispatch-wide", dispatch_wide);
    ("kernels", kernels);
    ("memory", memory);
    ("pipeline", pipeline);
    ("serving", serving);
    ("quant", quant);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("softmax-ablation", softmax_ablation);
    ("shard-ablation", shard_ablation);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst all_experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt name all_experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %S; available: %s\n" name
            (String.concat ", " (List.map fst all_experiments));
          exit 1)
    requested
